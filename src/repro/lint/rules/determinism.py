"""Determinism rules.

Simulations must be bit-reproducible under a seed: the robustness
benchmarks, the ``repro.obs diff`` regression gate and every recorded
campaign depend on it.  Global-state randomness (``random.*``,
``np.random.rand`` & friends), unseeded generators and wall-clock reads
inside the simulation packages (``repro.sim``/``sched``/``thermal``/
``core``) — or inside the parallel sweep runner (``repro/parallel.py``)
and the fault injector (``repro/faults/``), whose contracts rest on seeds
being pure functions of cell/fault identity — break that silently: two
identical runs stop agreeing,
which poisons trace diffs long before anyone notices a physics bug.

Wall-clock *measurement* via the monotonic profiling clocks
(``perf_counter``/``process_time``/``monotonic``) stays legal: it feeds
telemetry (scheduler wall time, profiling phases), never simulation state.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..engine import (
    DETERMINISTIC_MODULES,
    DETERMINISTIC_SUBPACKAGES,
    Module,
    Rule,
    import_aliases,
    register,
    resolve_call_target,
)
from ..findings import Finding

#: Call targets that read the wall clock (non-monotonic => nondeterministic
#: inputs); the monotonic measurement clocks are deliberately absent.
_WALLCLOCK_TARGETS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` entry points that are fine: explicit generator
#: construction (seededness of ``default_rng`` is checked separately).
_NP_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence"})


class _DeterminismRule(Rule):
    family = "determinism"

    def applies_to(self, module: Module) -> bool:
        if module.subpackage in DETERMINISTIC_SUBPACKAGES:
            return True
        rel = module.repro_parts[1:]
        for entry in DETERMINISTIC_MODULES:
            if entry.endswith("/"):
                # package entry, e.g. "faults/" covers repro/faults/**
                if rel[:1] == (entry[:-1],):
                    return True
            elif rel == tuple(entry.split("/")):
                # module entry, e.g. repro/parallel.py or repro/obs/spans.py
                return True
        return False


def _np_random_member(target: str) -> Optional[str]:
    """Member name for ``numpy.random.<member>`` targets, else ``None``."""
    for prefix in ("numpy.random.", "np.random."):
        if target.startswith(prefix):
            return target[len(prefix):]
    return None


@register
class GlobalRandomRule(_DeterminismRule):
    """Global-state randomness in the simulation packages."""

    id = "det-global-random"
    description = (
        "no stdlib random or np.random.* global-state calls in repro.sim/"
        "sched/thermal/core; thread an explicitly seeded Generator through"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        findings.append(
                            module.finding(
                                self,
                                node,
                                "stdlib 'random' (hidden global state) "
                                "imported in a deterministic package; use "
                                "a seeded np.random.Generator",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == (
                    "random"
                ):
                    findings.append(
                        module.finding(
                            self,
                            node,
                            "stdlib 'random' (hidden global state) "
                            "imported in a deterministic package; use a "
                            "seeded np.random.Generator",
                        )
                    )
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target is None:
                continue
            member = _np_random_member(target)
            if member is not None and member not in _NP_RANDOM_ALLOWED:
                findings.append(
                    module.finding(
                        self,
                        node,
                        f"np.random.{member}() uses numpy's global RNG "
                        "state; construct np.random.default_rng(seed) and "
                        "call methods on it",
                    )
                )
        return findings


@register
class UnseededRngRule(_DeterminismRule):
    """``default_rng()`` without an explicit seed."""

    id = "det-unseeded-rng"
    description = (
        "np.random.default_rng() without a seed draws OS entropy; pass an "
        "explicit seed so runs are reproducible"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target is None:
                continue
            member = _np_random_member(target)
            is_default_rng = member == "default_rng" or target.endswith(
                "numpy.random.default_rng"
            )
            if target == "default_rng":
                is_default_rng = aliases.get(
                    "default_rng", ""
                ).endswith("random.default_rng")
            if is_default_rng and not node.args and not node.keywords:
                findings.append(
                    module.finding(
                        self,
                        node,
                        "default_rng() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
                )
        return findings


@register
class WallClockRule(_DeterminismRule):
    """Wall-clock reads in the simulation packages."""

    id = "det-wallclock"
    description = (
        "no time.time()/datetime.now() in repro.sim/sched/thermal/core; "
        "simulated time comes from the engine, telemetry may use "
        "perf_counter()"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        aliases = import_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, aliases)
            if target in _WALLCLOCK_TARGETS:
                findings.append(
                    module.finding(
                        self,
                        node,
                        f"{target}() reads the wall clock inside a "
                        "deterministic package; use simulated time (or "
                        "time.perf_counter() for pure telemetry)",
                    )
                )
        return findings

"""Fault-robustness rules.

Under fault injection (``docs/faults.md``) schedulers must observe the
chip through the sensor shim — :meth:`repro.sched.base.Scheduler.
observed_temperatures` — never through the ground-truth
``SimContext.core_temperatures_c``.  A scheduler that reads ground truth
directly is silently immune to sensor noise, bias, dropouts and stuck-at
faults, so every robustness result measured for it is fiction; worse, it
works fine in every fault-free test, which is exactly why a human
reviewer will not catch it.  Ground truth stays legal in the engine (it
feeds the hardware DTM and the trace, modelling the thermal diode) and in
``sched/base.py`` itself (the fault-free fallback inside
``observed_temperatures``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import Module, Rule, register
from ..findings import Finding


@register
class UnguardedReadingRule(Rule):
    """Raw ground-truth temperature access in scheduler code."""

    id = "fault-unguarded-reading"
    family = "faults"
    description = (
        "schedulers must read temperatures via observed_temperatures() "
        "(the sensor shim under fault injection), not the ground-truth "
        "core_temperatures_c()"
    )

    def applies_to(self, module: Module) -> bool:
        parts = module.repro_parts
        return (
            len(parts) >= 3
            and parts[1] == "sched"
            and module.name != "base.py"
        )

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "core_temperatures_c"
            ):
                findings.append(
                    module.finding(
                        self,
                        node,
                        "ground-truth core_temperatures_c accessed from a "
                        "scheduler; use self.observed_temperatures() so the "
                        "sensor shim applies under fault injection",
                    )
                )
        return findings

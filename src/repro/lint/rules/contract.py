"""Scheduler-contract rules.

The engine drives every scheduler through the ``repro.sched.base``
contract: ``decide`` plus the admission primitives ``_can_admit`` /
``_admit`` / ``_release``.  HotPotato (Algorithm 2), PCMig and the
baselines all plug into the same four hooks; a subclass that misses one or
drifts its signature fails only at run time, deep inside a simulation.
These rules check the contract statically, and that every concrete
scheduler is exported from ``repro.sched`` so experiments and docs can
reach it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from ..engine import Module, Project, Rule, register
from ..findings import Finding

#: Hook name -> exact positional parameter names required by the base
#: contract (``repro.sched.base.Scheduler``).
REQUIRED_HOOKS: Dict[str, Tuple[str, ...]] = {
    "decide": ("self", "now_s"),
    "_can_admit": ("self", "task"),
    "_admit": ("self", "task", "now_s"),
    "_release": ("self", "task", "now_s"),
}

#: Optional hooks whose signature is checked when they are overridden.
OPTIONAL_HOOKS: Dict[str, Tuple[str, ...]] = {
    "on_task_arrival": ("self", "task", "now_s"),
    "on_task_complete": ("self", "task", "now_s"),
    "attach": ("self", "ctx"),
    "preferred_interval_s": ("self",),
}


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_scheduler_subclass(node: ast.ClassDef) -> bool:
    return any(name.endswith("Scheduler") for name in _base_names(node))


def _is_direct_subclass(node: ast.ClassDef) -> bool:
    return "Scheduler" in _base_names(node)


def _methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, ast.FunctionDef)
    }


def _positional_params(func: ast.FunctionDef) -> Tuple[str, ...]:
    args = func.args
    return tuple(a.arg for a in args.posonlyargs + args.args)


class _ContractRule(Rule):
    family = "scheduler-contract"

    def applies_to(self, module: Module) -> bool:
        return module.subpackage == "sched" and module.name != "base.py"


@register
class MissingHookRule(_ContractRule):
    """Direct ``Scheduler`` subclass missing a required hook."""

    id = "sched-missing-hook"
    description = (
        "direct Scheduler subclasses must implement decide, _can_admit, "
        "_admit and _release"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_direct_subclass(
                node
            ):
                continue
            defined = _methods(node)
            for hook in REQUIRED_HOOKS:
                if hook not in defined:
                    findings.append(
                        module.finding(
                            self,
                            node,
                            f"scheduler {node.name!r} does not define "
                            f"required hook {hook}() from the "
                            "sched.base.Scheduler contract",
                        )
                    )
        return findings


@register
class HookSignatureRule(_ContractRule):
    """Scheduler hook overridden with an incompatible signature."""

    id = "sched-hook-signature"
    description = (
        "overridden scheduler hooks must keep the base contract's "
        "positional parameter names (the engine calls them by position "
        "and keyword)"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []
        expected_all = dict(REQUIRED_HOOKS)
        expected_all.update(OPTIONAL_HOOKS)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or not (
                _is_scheduler_subclass(node)
            ):
                continue
            for hook, expected in expected_all.items():
                func = _methods(node).get(hook)
                if func is None:
                    continue
                actual = _positional_params(func)
                if actual[: len(expected)] != expected or (
                    len(actual) > len(expected)
                    and len(actual) - len(expected)
                    > len(func.args.defaults)
                ):
                    findings.append(
                        module.finding(
                            self,
                            func,
                            f"{node.name}.{hook}() signature "
                            f"{actual} is incompatible with the base "
                            f"contract {expected} (extra parameters need "
                            "defaults)",
                        )
                    )
        return findings


@register
class SchedulerExportRule(Rule):
    """Every concrete scheduler is exported from ``repro.sched``."""

    id = "sched-export"
    family = "scheduler-contract"
    description = (
        "concrete Scheduler subclasses defined in repro/sched modules "
        "must appear in repro/sched/__init__.py __all__"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        init = next(project.by_suffix("sched", "__init__.py"), None)
        if init is None:
            return []
        exported = set()
        for node in init.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                try:
                    exported = set(ast.literal_eval(node.value))
                except (ValueError, SyntaxError):
                    exported = set()
        findings: List[Finding] = []
        for module in project.in_subpackage("sched"):
            if module.name.startswith("_"):
                continue
            for node in module.tree.body:
                if (
                    isinstance(node, ast.ClassDef)
                    and _is_scheduler_subclass(node)
                    and not node.name.startswith("_")
                    and node.name not in exported
                ):
                    findings.append(
                        module.finding(
                            self,
                            node,
                            f"scheduler {node.name!r} is not exported "
                            "from repro.sched (__all__ in "
                            "sched/__init__.py)",
                        )
                    )
        return findings


def hook_names() -> Tuple[str, ...]:
    """All contract hook names (required first), for docs and tests."""
    return tuple(REQUIRED_HOOKS) + tuple(OPTIONAL_HOOKS)

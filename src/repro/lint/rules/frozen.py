"""Frozen-config rules.

``SystemConfig`` and its sub-configs are frozen dataclasses on purpose:
every substrate (thermal model, power model, scheduler, simulator) is
calibrated against one immutable parameter set, and the analytic
``T_peak`` bound is only valid for the configuration it was computed
from.  Mutating a config after construction desynchronizes the substrates
without any error — the canonical "silent physics corruption" bug.  The
blessed route is ``SystemConfig.replace(...)`` / ``dataclasses.replace``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..engine import Module, Rule, attribute_chain, register
from ..findings import Finding

#: Local names that, by repo convention, hold (frozen) config objects.
_CONFIG_NAMES = frozenset({"cfg", "config"})
_CONFIG_SUFFIXES = ("_cfg", "_config")


def _is_config_name(name: str) -> bool:
    return name in _CONFIG_NAMES or name.endswith(_CONFIG_SUFFIXES)


class _FrozenRule(Rule):
    family = "frozen-config"


@register
class FrozenSetattrRule(_FrozenRule):
    """``object.__setattr__`` outside ``__post_init__``."""

    id = "frozen-setattr"
    description = (
        "object.__setattr__ defeats frozen dataclasses; it is only legal "
        "inside __post_init__ of the dataclass itself"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []

        def walk(node: ast.AST, func: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                child_func = func
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    child_func = child.name
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "__setattr__"
                    and isinstance(child.func.value, ast.Name)
                    and child.func.value.id == "object"
                    and func != "__post_init__"
                ):
                    findings.append(
                        module.finding(
                            self,
                            child,
                            "object.__setattr__ outside __post_init__ "
                            "mutates a frozen dataclass; use "
                            "dataclasses.replace() instead",
                        )
                    )
                walk(child, child_func)

        walk(module.tree, None)
        return findings


@register
class FrozenConfigAssignRule(_FrozenRule):
    """Attribute assignment on a known config object."""

    id = "frozen-config-assign"
    description = (
        "assigning attributes on cfg/config objects mutates a frozen "
        "dataclass at runtime; build a new config with .replace()"
    )

    def _flag_target(
        self, module: Module, target: ast.expr
    ) -> Optional[Finding]:
        if not isinstance(target, ast.Attribute):
            return None
        # The chain minus the assigned attribute is the mutated object:
        # ``cfg.thermal.x = 1`` mutates ``cfg.thermal``.
        owner = attribute_chain(target.value)
        if any(_is_config_name(part) for part in owner):
            dotted = ".".join(owner + [target.attr])
            return module.finding(
                self,
                target,
                f"assignment to {dotted!r} mutates a config object; "
                "configs are frozen — use SystemConfig.replace()",
            )
        return None

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                finding = self._flag_target(module, target)
                if finding is not None:
                    findings.append(finding)
        return findings

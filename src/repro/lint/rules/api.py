"""Public-API hygiene rules.

``__all__`` is the contract between the packages and their users (the
README, the docs and ``tests/test_public_api.py`` all navigate by it); a
name listed there that does not resolve raises only on ``from repro.x
import *`` or silently hides an API. Module docstrings are how the docs
build and new contributors orient — every module under ``src/repro``
states its purpose.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..engine import Module, Rule, register
from ..findings import Finding


def _bound_names(tree: ast.Module) -> Set[str]:
    """Every name bound anywhere in the module (defs, imports, assigns)."""
    names: Set[str] = {"__version__", "__doc__", "__name__"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            return node
    return None


class _ApiRule(Rule):
    family = "public-api"


@register
class AllResolvesRule(_ApiRule):
    """``__all__`` entries must resolve to names bound in the module."""

    id = "api-all-unresolved"
    description = (
        "__all__ must be a static list of strings naming things the "
        "module actually binds"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        assignment = _all_assignment(module.tree)
        if assignment is None:
            return []
        try:
            exported = ast.literal_eval(assignment.value)
        except (ValueError, SyntaxError):
            return [
                module.finding(
                    self,
                    assignment,
                    "__all__ is not a static literal list of strings",
                )
            ]
        if not isinstance(exported, (list, tuple)) or not all(
            isinstance(name, str) for name in exported
        ):
            return [
                module.finding(
                    self,
                    assignment,
                    "__all__ must be a list/tuple of strings",
                )
            ]
        findings: List[Finding] = []
        seen: Dict[str, int] = {}
        bound = _bound_names(module.tree)
        for name in exported:
            seen[name] = seen.get(name, 0) + 1
            if name not in bound:
                findings.append(
                    module.finding(
                        self,
                        assignment,
                        f"__all__ exports {name!r} but the module never "
                        "binds it",
                    )
                )
        for name, count in seen.items():
            if count > 1:
                findings.append(
                    module.finding(
                        self,
                        assignment,
                        f"__all__ lists {name!r} {count} times",
                    )
                )
        return findings


@register
class ModuleDocstringRule(_ApiRule):
    """Modules under ``src/repro`` must carry a docstring."""

    id = "api-module-docstring"
    severity = "warning"
    description = (
        "every non-empty module states its purpose in a module docstring"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not module.tree.body:  # an intentionally empty __init__.py
            return []
        if ast.get_docstring(module.tree) is None:
            return [
                module.finding(
                    self,
                    module.tree.body[0],
                    "module has no docstring; state what the module is "
                    "for (see docs/lint.md)",
                )
            ]
        return []

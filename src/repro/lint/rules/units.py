"""Unit-safety rules.

The whole thermal pipeline relies on the convention documented in
``repro.units``: every temperature is a Celsius-compatible difference from
an absolute reference, every duration is seconds, every frequency Hertz.
A raw ``273.15`` or a stray ``0.5e-3`` bound to a ``*_s`` name is exactly
how a Kelvin/Celsius or ms/s mix-up slips in — it silently shifts the
analytic ``T_peak`` bound instead of raising.  These rules force all such
constants through the named helpers in ``repro.units``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Tuple

from ..engine import Module, Rule, register
from ..findings import Finding

#: The Celsius/Kelvin offset; only ``repro/units.py`` may spell it out.
KELVIN_OFFSET_VALUE = 273.15

#: Unit-bearing name suffixes and the helpers that must produce their
#: values (suffix matching is case-insensitive, so ``EPOCH_S`` counts).
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_s", "units.ms()/units.us()/units.ns()"),
    ("_hz", "units.ghz()/units.mhz()"),
    ("_m2", "units.mm2()"),
    ("_m", "units.mm()/units.um()"),
)

_SCI_NOTATION_RE = re.compile(r"\d[eE][-+]?\d")


def _unit_suffix(name: Optional[str]) -> Optional[Tuple[str, str]]:
    if not name:
        return None
    lowered = name.lower()
    for suffix, helpers in UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return suffix, helpers
    return None


def _scale_literals(node: ast.AST, module: Module) -> Iterator[ast.Constant]:
    """Scientific-notation float constants inside ``node`` (incl. tuples)."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for elt in node.elts:
            yield from _scale_literals(elt, module)
        return
    if isinstance(node, ast.UnaryOp):
        yield from _scale_literals(node.operand, module)
        return
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and _SCI_NOTATION_RE.search(module.segment(node))
    ):
        yield node


class _UnitVisitor(ast.NodeVisitor):
    """Collect (name, literal) pairs for unit-suffixed bindings."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.hits: List[Tuple[str, str, ast.Constant]] = []

    def _scan(self, name: Optional[str], value: Optional[ast.AST]) -> None:
        suffix = _unit_suffix(name)
        if suffix is None or value is None:
            return
        for literal in _scale_literals(value, self.module):
            self.hits.append((name or "", suffix[1], literal))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scan(target.id, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._scan(node.target.id, node.value)
        self.generic_visit(node)

    def _scan_arguments(self, args: ast.arguments) -> None:
        positional = args.posonlyargs + args.args
        defaults: List[Optional[ast.expr]] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        for arg, default in zip(positional, defaults):
            self._scan(arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            self._scan(arg.arg, default)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan_arguments(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scan_arguments(node.args)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            self._scan(keyword.arg, keyword.value)
        self.generic_visit(node)


class _UnitsRule(Rule):
    """Base: unit rules never apply inside ``units.py`` itself."""

    family = "unit-safety"

    def applies_to(self, module: Module) -> bool:
        return module.name != "units.py"


@register
class RawScaleLiteralRule(_UnitsRule):
    """Scientific-notation literal bound to a unit-suffixed name."""

    id = "unit-raw-literal"
    description = (
        "scale literals (0.5e-3, 1.5e-9, ...) bound to *_s/*_hz/*_m/*_m2 "
        "names must go through the repro.units helpers"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        visitor = _UnitVisitor(module)
        visitor.visit(module.tree)
        return [
            module.finding(
                self,
                literal,
                f"raw scale literal {module.segment(literal)!r} bound to "
                f"{name!r}; use {helpers} from repro.units",
            )
            for name, helpers, literal in visitor.hits
        ]


@register
class KelvinLiteralRule(_UnitsRule):
    """A literal 273.15 outside ``units.py``."""

    id = "unit-kelvin-literal"
    description = (
        "the Kelvin offset 273.15 may only be spelled in repro/units.py; "
        "use units.KELVIN_OFFSET or the conversion helpers"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        return [
            module.finding(
                self,
                node,
                "literal 273.15 duplicates units.KELVIN_OFFSET; use "
                "units.celsius_to_kelvin()/kelvin_to_celsius()",
            )
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value == KELVIN_OFFSET_VALUE
        ]


@register
class KelvinArithmeticRule(_UnitsRule):
    """Hand-rolled ``x + KELVIN_OFFSET`` arithmetic outside ``units.py``."""

    id = "unit-kelvin-arith"
    description = (
        "adding/subtracting KELVIN_OFFSET by hand re-implements the "
        "conversion helpers; use units.celsius_to_kelvin()/"
        "kelvin_to_celsius()"
    )

    @staticmethod
    def _is_offset(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "KELVIN_OFFSET"
        if isinstance(node, ast.Attribute):
            return node.attr == "KELVIN_OFFSET"
        return False

    def check_module(self, module: Module) -> Iterable[Finding]:
        return [
            module.finding(
                self,
                node,
                "arithmetic with KELVIN_OFFSET outside units.py; use "
                "units.celsius_to_kelvin()/kelvin_to_celsius()",
            )
            for node in ast.walk(module.tree)
            if isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Add, ast.Sub))
            and (self._is_offset(node.left) or self._is_offset(node.right))
        ]

"""Family ``async-safety`` — concurrency hazards on the serve hot path.

The serve stack (:mod:`repro.serve`) is a single-threaded asyncio loop
by design: determinism needs one interleaving, and the paper's workload
fits one core.  That design converts every blocking call reachable from
a handler into a *global* stall — all tenants' rotation-interval queries
wait behind it — and every read-modify-write of shared state that spans
an ``await`` into a lost-update race the moment two requests interleave.
Per-file rules cannot see either hazard: the blocking call typically
hides two sync helpers deep, and the interleaving hazard is a property
of statement *order*, not of any one statement.

These rules run as project passes over :class:`repro.lint.graph.ProjectGraph`
(built lazily once per run).  Analysis scope — which async functions are
roots, and which sync helpers are traversed — is
:meth:`ProjectGraph.in_async_scope`: the ``serve``/``obs`` packages plus
top-level ``repro`` modules.  Calls into the simulation core are
boundary edges, never traversed: the core is synchronous compute whose
one deliberate loop-block (``/v1/simulate``) is governed by the
documented horizon clamp, and traversing it would flag runtime-dead
paths (e.g. trace sinks never constructed under serve configs).  The
family gates at **zero false positives** on the committed tree; every
heuristic here errs toward silence (unresolved calls produce no edge).

The five rules, each with a worked example in ``docs/lint.md``:

- ``async-blocking-call`` — an ``async def`` reaches a blocking
  primitive (``time.sleep``, sync file I/O, ``subprocess``,
  ``requests``-style sockets), directly or through sync helpers;
- ``async-shared-mutation`` — an async method reads ``self.<attr>``,
  suspends at an ``await``, then re-binds the same attribute with no
  lock held (lost-update across interleaving);
- ``async-unawaited-coroutine`` — a call to a project ``async def``
  used as a bare statement: the coroutine is created, never scheduled;
- ``async-lock-across-blocking`` — a blocking primitive reached while a
  lock is held (serializes the stall across every waiter);
- ``async-contextvar-leak`` — ``ContextVar.set`` whose token is
  discarded or never ``reset`` in a ``finally`` (request state bleeds
  into the next request on the same task).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..engine import Project, Rule, dotted_name, register
from ..findings import Finding
from ..graph import FunctionSummary, ProjectGraph

FAMILY = "async-safety"


def _short(qualname: str) -> str:
    """Human form of a qualname: strip the ``repro.``-tree module prefix."""
    parts = qualname.split(".")
    keep = [p for p in parts if p[:1].isupper() or p == parts[-1]]
    return ".".join(keep) if keep else qualname


def _chain_text(chain: Tuple[str, ...]) -> str:
    return " -> ".join([_short(q) for q in chain[:-1]] + [chain[-1]])


def _owned_statements(func: ast.AST) -> Iterator[ast.AST]:
    """All nodes of ``func``'s own body, nested def/lambda bodies excluded."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _project_blocking_edges(
    graph: ProjectGraph, summary: FunctionSummary
) -> Iterator[Tuple[ast.Call, Tuple[str, ...]]]:
    """Call sites of ``summary`` whose sync project callee reaches a
    blocking primitive, with the chain (callee..primitive)."""
    seen: Set[str] = set()
    for site in summary.calls:
        if site.kind != "project" or site.target is None:
            continue
        if site.target in seen:
            continue
        callee = graph.functions.get(site.target)
        if callee is None or callee.is_async:
            continue
        if not graph.in_async_scope(callee.module):
            continue
        chain = graph.blocking_chain(site.target)
        if chain is not None:
            seen.add(site.target)
            yield site.node, chain


@register
class AsyncBlockingCallRule(Rule):
    """Blocking primitive reachable from an ``async def``."""

    id = "async-blocking-call"
    family = FAMILY
    description = (
        "async def in the serve/obs scope reaches a blocking primitive "
        "(time.sleep, sync file I/O, subprocess, sockets) directly or "
        "through sync helpers — it stalls the whole event loop"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        for root in graph.async_roots():
            reported: Set[str] = set()
            for site in root.blocking:
                target = site.target or "<blocking>"
                if target in reported:
                    continue
                reported.add(target)
                yield root.module.finding(
                    self,
                    site.node,
                    f"async `{_short(root.qualname)}` calls blocking "
                    f"`{target}` on the event loop",
                )
            for node, chain in _project_blocking_edges(graph, root):
                yield root.module.finding(
                    self,
                    node,
                    f"async `{_short(root.qualname)}` reaches blocking "
                    f"`{chain[-1]}` via {_chain_text(chain)}",
                )


# -- async-shared-mutation -----------------------------------------------------

#: ordered event kinds produced by :func:`_mutation_events`.
_READ, _WRITE, _AWAIT, _LOCK_IN, _LOCK_OUT = range(5)


def _mutation_events(
    node: ast.AST, events: List[Tuple[int, str, ast.AST]]
) -> None:
    """Linearize a function body into read/write/await/lock events.

    Approximate execution order: values before stores, loop bodies once,
    both branches of a conditional in sequence.  Nested function bodies
    are excluded (they run on their own schedule).
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            kind = _READ if isinstance(node.ctx, ast.Load) else _WRITE
            events.append((kind, node.attr, node))
        _mutation_events(node.value, events)
        return
    if isinstance(node, ast.Await):
        _mutation_events(node.value, events)
        events.append((_AWAIT, "", node))
        return
    if isinstance(node, (ast.AsyncFor,)):
        events.append((_AWAIT, "", node))
    if isinstance(node, ast.Assign):
        _mutation_events(node.value, events)
        for target in node.targets:
            _mutation_events(target, events)
        return
    if isinstance(node, ast.AugAssign):
        # `self.x += v` reads then writes self.x
        if (
            isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "self"
        ):
            events.append((_READ, node.target.attr, node.target))
        _mutation_events(node.value, events)
        _mutation_events(node.target, events)
        return
    if isinstance(node, (ast.With, ast.AsyncWith)):
        lockish = any(
            "lock" in (dotted_name(
                item.context_expr.func
                if isinstance(item.context_expr, ast.Call)
                else item.context_expr
            ) or "").rsplit(".", 1)[-1].lower()
            for item in node.items
        )
        for item in node.items:
            _mutation_events(item.context_expr, events)
        if isinstance(node, ast.AsyncWith):
            events.append((_AWAIT, "", node))
        if lockish:
            events.append((_LOCK_IN, "", node))
        for child in node.body:
            _mutation_events(child, events)
        if lockish:
            events.append((_LOCK_OUT, "", node))
        return
    for child in ast.iter_child_nodes(node):
        _mutation_events(child, events)


@register
class AsyncSharedMutationRule(Rule):
    """Read-modify-write of ``self.`` state across an ``await``."""

    id = "async-shared-mutation"
    family = FAMILY
    description = (
        "async method reads self-state, awaits, then re-binds the same "
        "attribute without a lock — interleaved requests lose updates"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        for root in graph.async_roots():
            if root.class_qualname is None:
                continue
            events: List[Tuple[int, str, ast.AST]] = []
            for child in ast.iter_child_nodes(root.node):
                _mutation_events(child, events)
            yield from self._scan(root, events)

    def _scan(
        self,
        root: FunctionSummary,
        events: List[Tuple[int, str, ast.AST]],
    ) -> Iterator[Finding]:
        lock_depth = 0
        #: attr -> line of an unlocked read not yet superseded by a write.
        pending_reads: Dict[str, int] = {}
        #: attrs whose pending read has an await after it.
        awaited: Set[str] = set()
        reported: Set[str] = set()
        for kind, attr, node in events:
            if kind == _LOCK_IN:
                lock_depth += 1
            elif kind == _LOCK_OUT:
                lock_depth = max(0, lock_depth - 1)
            elif kind == _AWAIT:
                awaited.update(pending_reads)
            elif kind == _READ:
                pending_reads.setdefault(attr, getattr(node, "lineno", 1))
            elif kind == _WRITE:
                if (
                    attr in awaited
                    and lock_depth == 0
                    and attr not in reported
                ):
                    reported.add(attr)
                    read_line = pending_reads.get(attr, 0)
                    yield root.module.finding(
                        self,
                        node,
                        f"async `{_short(root.qualname)}` re-binds "
                        f"`self.{attr}` after an await that follows its "
                        f"read (line {read_line}) with no lock held — "
                        "interleaved coroutines race on it",
                    )
                # a write resets the window either way
                pending_reads.pop(attr, None)
                awaited.discard(attr)


@register
class AsyncUnawaitedCoroutineRule(Rule):
    """Bare call of a project ``async def`` — coroutine never runs."""

    id = "async-unawaited-coroutine"
    family = FAMILY
    description = (
        "calling an async def as a bare statement creates a coroutine "
        "that is never awaited, gathered or scheduled as a task"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        for _, summary in sorted(graph.functions.items()):
            if not graph.in_async_scope(summary.module):
                continue
            sites = {
                id(site.node): site
                for site in summary.calls
                if site.kind == "project" and site.target is not None
            }
            for node in _owned_statements(summary.node):
                if not isinstance(node, ast.Expr):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                site = sites.get(id(node.value))
                if site is None or site.target is None:
                    continue
                callee = graph.functions.get(site.target)
                if callee is None or not callee.is_async:
                    continue
                yield summary.module.finding(
                    self,
                    node,
                    f"`{_short(summary.qualname)}` calls async "
                    f"`{_short(site.target)}` without await/gather/"
                    "create_task — the coroutine never runs",
                )


@register
class AsyncLockAcrossBlockingRule(Rule):
    """Blocking primitive reached while a lock is held."""

    id = "async-lock-across-blocking"
    family = FAMILY
    description = (
        "a lock held in an async function guards a blocking call — every "
        "waiter serializes behind the stall"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        for root in graph.async_roots():
            if not root.lock_nodes:
                continue
            blocking_by_id = {id(site.node): site for site in root.blocking}
            edges = dict(
                (id(node), chain)
                for node, chain in _project_blocking_edges(graph, root)
            )
            for label, with_node in root.lock_nodes:
                for node in _owned_statements(with_node):
                    if not isinstance(node, ast.Call):
                        continue
                    site = blocking_by_id.get(id(node))
                    if site is not None:
                        yield root.module.finding(
                            self,
                            node,
                            f"async `{_short(root.qualname)}` holds "
                            f"`{label}` across blocking "
                            f"`{site.target}`",
                        )
                        continue
                    chain = edges.get(id(node))
                    if chain is not None:
                        yield root.module.finding(
                            self,
                            node,
                            f"async `{_short(root.qualname)}` holds "
                            f"`{label}` across blocking `{chain[-1]}` "
                            f"via {_chain_text(chain)}",
                        )


@register
class AsyncContextvarLeakRule(Rule):
    """``ContextVar.set`` without a ``reset`` on every exit path."""

    id = "async-contextvar-leak"
    family = FAMILY
    description = (
        "ContextVar.set whose token is discarded or never reset in a "
        "finally — request-scoped state bleeds into the next request"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        for module_name in sorted(graph.scopes):
            scope = graph.scopes[module_name]
            if not graph.in_async_scope(scope.module):
                continue
            contextvars = {
                name
                for name, type_name in scope.var_types.items()
                if type_name == "contextvars.ContextVar"
            }
            if not contextvars:
                continue
            for _, summary in sorted(graph.functions.items()):
                if summary.module is not scope.module:
                    continue
                yield from self._check_function(summary, contextvars)

    def _check_function(
        self, summary: FunctionSummary, contextvars: Set[str]
    ) -> Iterator[Finding]:
        resets = self._finally_resets(summary.node, contextvars)
        for node in _owned_statements(summary.node):
            set_call = self._set_call(node, contextvars)
            if set_call is None:
                continue
            var, call = set_call
            token = self._token_name(summary.node, call)
            if token is None:
                yield summary.module.finding(
                    self,
                    call,
                    f"`{_short(summary.qualname)}` discards the token of "
                    f"`{var}.set(...)` — the previous value can never be "
                    "restored",
                )
            elif (var, token) not in resets:
                yield summary.module.finding(
                    self,
                    call,
                    f"`{_short(summary.qualname)}` never resets "
                    f"`{var}` with token `{token}` in a finally — the "
                    "value leaks past the request on an exception path",
                )

    @staticmethod
    def _set_call(
        node: ast.AST, contextvars: Set[str]
    ) -> Optional[Tuple[str, ast.Call]]:
        if not isinstance(node, ast.Call):
            return None
        dotted = dotted_name(node.func)
        if dotted is None or "." not in dotted:
            return None
        var, _, method = dotted.rpartition(".")
        if method == "set" and var in contextvars:
            return var, node
        return None

    @staticmethod
    def _token_name(func: ast.AST, call: ast.Call) -> Optional[str]:
        """The Name a ``set`` call's token is bound to, if any."""
        for node in _owned_statements(func):
            if (
                isinstance(node, ast.Assign)
                and node.value is call
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                return node.targets[0].id
        return None

    @staticmethod
    def _finally_resets(
        func: ast.AST, contextvars: Set[str]
    ) -> Set[Tuple[str, str]]:
        """``(var, token)`` pairs reset inside some ``finally`` block."""
        resets: Set[Tuple[str, str]] = set()
        for node in _owned_statements(func):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call) or not call.args:
                        continue
                    dotted = dotted_name(call.func)
                    if dotted is None:
                        continue
                    var, _, method = dotted.rpartition(".")
                    if (
                        method == "reset"
                        and var in contextvars
                        and isinstance(call.args[0], ast.Name)
                    ):
                        resets.add((var, call.args[0].id))
        return resets

"""Baseline files: grandfathering known findings.

A baseline is a JSON file holding the fingerprints of findings that are
tolerated (typically: pre-existing debt captured when a rule is first
introduced).  ``repro.lint check --baseline FILE`` subtracts the baseline
and only *new* findings fail the gate; ``--write-baseline FILE`` snapshots
the current findings so the gate starts clean.

Fingerprints are line-independent (see :mod:`repro.lint.findings`), so a
baseline survives unrelated edits; it goes stale only when the finding's
file, rule or message changes — at which point the finding resurfaces and
must be fixed or re-baselined deliberately.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Union

from .findings import Finding

PathLike = Union[str, Path]

_VERSION = 1


def save_baseline(path: PathLike, findings: Iterable[Finding]) -> None:
    """Write the fingerprints of ``findings`` as a baseline file."""
    fingerprints = sorted({f.fingerprint for f in findings})
    Path(path).write_text(
        json.dumps(
            {"version": _VERSION, "fingerprints": fingerprints}, indent=2
        )
        + "\n"
    )


def load_baseline(path: PathLike) -> Set[str]:
    """Load a baseline file into a set of fingerprints."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"{path}: not a lint baseline (no 'fingerprints')")
    if data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    fingerprints = data["fingerprints"]
    if not isinstance(fingerprints, list) or not all(
        isinstance(f, str) for f in fingerprints
    ):
        raise ValueError(f"{path}: 'fingerprints' must be a list of strings")
    return set(fingerprints)


def partition(
    findings: Sequence[Finding], baseline: Set[str]
) -> "tuple[List[Finding], List[Finding]]":
    """Split findings into (new, grandfathered) against ``baseline``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.fingerprint in baseline else new).append(finding)
    return new, old

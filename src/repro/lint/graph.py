"""Project-level symbol table, call graph and per-function summaries.

The per-file rules of :mod:`repro.lint.rules` see one AST at a time; the
``async-safety`` family (:mod:`repro.lint.rules.asyncsafety`) needs to
see *through* calls: an ``async def`` handler in ``repro.serve.http``
that calls a sync helper that calls ``time.sleep`` stalls every tenant
on the single-threaded event loop, and no single file shows the whole
chain.  This module builds, once per :func:`repro.lint.engine.run_lint`
call (lazily, via :meth:`repro.lint.engine.Project.graph`):

- a **symbol table** over every parsed module: module-qualified
  functions, classes, methods, import aliases (absolute *and* relative),
  class attribute types (``self.x = SomeClass(...)`` and annotations)
  and module-level variable types (``X = ContextVar(...)``);
- a **call graph**: every call site resolved — best effort, no dynamic
  dispatch — to a project-qualified function/method, an external dotted
  target (``time.sleep``), or left unresolved;
- a **per-function summary** (:class:`FunctionSummary`): calls made,
  awaits performed, ``self.``-attribute names read and written, lock
  context managers held, and blocking primitives reached directly;
- a transitive **blocking-reachability** query
  (:meth:`ProjectGraph.blocking_chain`) with memoization and cycle
  tolerance.

Resolution is deliberately an *under*-approximation: a call that cannot
be resolved produces no edge, so the async-safety rules err toward
silence rather than noise (their gate requires zero false positives on
the committed tree).  Edges into the simulation core
(``repro.sim``/``sched``/``thermal``/``core``/…) are recorded but never
traversed — see :data:`ASYNC_SCOPE_SUBPACKAGES`: the core is synchronous
compute by design, its loop-blocking governed by the documented horizon
clamp at the one serve entry point, and it holds no sockets or file
handles at serve time.

Everything here is stdlib-only, like the rest of the package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .engine import Module, Project, dotted_name

__all__ = [
    "ASYNC_SCOPE_SUBPACKAGES",
    "BLOCKING_TARGETS",
    "CallSite",
    "ClassInfo",
    "FunctionSummary",
    "ModuleScope",
    "ProjectGraph",
    "blocking_kind",
]

#: ``repro`` subpackages whose async functions are analyzed as event-loop
#: roots and whose sync helpers are traversed.  Top-level ``repro``
#: modules (``parallel.py``, ``_lru.py``, ...) are traversed too; the
#: simulation core packages are boundary edges (never traversed).
ASYNC_SCOPE_SUBPACKAGES = ("serve", "obs")

#: Exact external call targets that block the calling thread.
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "open",
        "input",
        "os.system",
        "os.popen",
        "os.fdopen",
        "os.replace",
        "os.remove",
        "os.makedirs",
        "tempfile.mkstemp",
        "tempfile.NamedTemporaryFile",
        "urllib.request.urlopen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
    }
)

#: Dotted prefixes that are blocking wholesale (network / subprocess).
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "http.client.")

#: Blocking methods of classes the resolver knows without project source.
_BLOCKING_EXTERNAL_METHODS = frozenset(
    {
        "pathlib.Path.read_text",
        "pathlib.Path.write_text",
        "pathlib.Path.read_bytes",
        "pathlib.Path.write_bytes",
        "pathlib.Path.open",
        "pathlib.Path.unlink",
        "pathlib.Path.mkdir",
        "pathlib.Path.touch",
        "pathlib.Path.rename",
        "pathlib.Path.replace",
    }
)

#: The documented union, exported for tests and ``docs/lint.md``.
BLOCKING_TARGETS = frozenset(_BLOCKING_EXACT) | _BLOCKING_EXTERNAL_METHODS

#: External classes whose instances the resolver types (so chained calls
#: like ``Path(p).read_text()`` resolve to ``pathlib.Path.read_text``).
_KNOWN_EXTERNAL_CLASSES = {
    "pathlib.Path": "pathlib.Path",
    "pathlib.PurePath": "pathlib.Path",
    "contextvars.ContextVar": "contextvars.ContextVar",
    "asyncio.Lock": "asyncio.Lock",
    "threading.Lock": "threading.Lock",
    "threading.RLock": "threading.Lock",
}


def blocking_kind(target: Optional[str]) -> Optional[str]:
    """The blocking primitive ``target`` names, or ``None``.

    ``target`` is a resolved external dotted name; project-qualified
    targets never match (their bodies are traversed instead).
    """
    if target is None:
        return None
    if target in _BLOCKING_EXACT or target in _BLOCKING_EXTERNAL_METHODS:
        return target
    for prefix in _BLOCKING_PREFIXES:
        if target.startswith(prefix):
            return target
    return None


# -- symbol-table records ------------------------------------------------------


@dataclass
class CallSite:
    """One resolved (or not) call expression inside a function body."""

    node: ast.Call
    #: project-qualified name, external dotted name, or ``None``.
    target: Optional[str]
    #: ``"project"`` | ``"external"`` | ``"unresolved"``.
    kind: str

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1) or 1


@dataclass
class FunctionSummary:
    """What one function does, as far as the resolver can see."""

    qualname: str
    module: Module
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    #: enclosing class qualname (``None`` for module-level functions).
    class_qualname: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    #: number of suspension points (``await`` / ``async for`` / ``async with``).
    awaits: int = 0
    #: ``self.<name>`` attributes read / written anywhere in the body.
    self_reads: Set[str] = field(default_factory=set)
    self_writes: Set[str] = field(default_factory=set)
    #: dotted context expressions of ``with`` / ``async with`` items that
    #: look like locks (resolve to a Lock class or carry "lock" in the name).
    locks_held: List[str] = field(default_factory=list)
    #: the same locks with their ``With``/``AsyncWith`` nodes, for rules
    #: that inspect what runs *inside* the guarded block.
    lock_nodes: List[Tuple[str, ast.AST]] = field(default_factory=list)
    #: call sites that hit a blocking primitive directly.
    blocking: List[CallSite] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1) or 1

    def to_dict(self) -> Dict[str, object]:
        """JSON form for ``--graph-dump``."""
        return {
            "module": self.module.display,
            "line": self.line,
            "async": self.is_async,
            "class": self.class_qualname,
            "awaits": self.awaits,
            "calls": sorted(
                {c.target for c in self.calls if c.target is not None}
            ),
            "blocking": sorted({c.target for c in self.blocking if c.target}),
            "reads": sorted(self.self_reads),
            "writes": sorted(self.self_writes),
            "locks": sorted(set(self.locks_held)),
        }


@dataclass
class ClassInfo:
    """One project class: methods, bases and inferred attribute types."""

    qualname: str
    module: Module
    node: ast.ClassDef
    #: method name -> function qualname (methods defined in *this* class).
    methods: Dict[str, str] = field(default_factory=dict)
    #: raw dotted base-class expressions, resolution deferred to the graph.
    bases: List[str] = field(default_factory=list)
    #: ``self.<attr>`` -> class qualname (project) or external dotted name.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleScope:
    """Per-module name bindings used during resolution."""

    name: str
    module: Module
    #: local name -> dotted import target (absolute, relative resolved).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: top-level function name -> qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: top-level class name -> qualname.
    classes: Dict[str, str] = field(default_factory=dict)
    #: module-level variable name -> inferred type (class qualname/dotted).
    var_types: Dict[str, str] = field(default_factory=dict)


# -- helpers -------------------------------------------------------------------


def module_dotted_name(module: Module) -> str:
    """Module-qualified dotted name (``repro.serve.http``).

    Derived from :attr:`Module.repro_parts` so snippet trees in tests
    resolve exactly like the real sources; files outside a ``repro``
    tree fall back to their stem.
    """
    parts = module.repro_parts
    if not parts:
        return module.path.stem
    names = list(parts[:-1])
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    if stem != "__init__":
        names.append(stem)
    return ".".join(names)


def _module_package(name: str, module: Module) -> str:
    """The package a module's relative imports resolve against."""
    if module.path.name == "__init__.py":
        return name
    head, _, _ = name.rpartition(".")
    return head


def _iter_statements(root: ast.AST, skip_nested: bool = False):
    """Statement nodes under ``root``, without visiting expressions.

    The indexing passes only care about statements (imports, assignments,
    class/function definitions); skipping the expression nodes — the
    bulk of any AST — keeps the graph build within its benchmark gate.
    ``skip_nested`` stops at nested function definitions (their bodies
    belong to their own summaries).
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if (
            skip_nested
            and node is not root
            and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            stack.extend(getattr(node, field_name, None) or ())
        for handler in getattr(node, "handlers", None) or ():
            stack.append(handler)
        for case in getattr(node, "cases", None) or ():
            stack.extend(case.body)


def _import_map(module: Module, name: str) -> Dict[str, str]:
    """Local name -> absolute dotted target, relative imports included."""
    package = _module_package(name, module)
    aliases: Dict[str, str] = {}
    for node in _iter_statements(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a`` (to package ``a``) —
                    # attribute access supplies the rest of the path.
                    head = alias.name.split(".")[0]
                    aliases.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                hops = package.split(".") if package else []
                hops = hops[: len(hops) - (node.level - 1)] if node.level > 1 else hops
                base = ".".join(hops)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            if not base:
                continue
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


def _annotation_type(node: Optional[ast.AST]) -> Optional[str]:
    """Dotted class name of a simple annotation (``X``/``Optional[X]``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        if head is None:
            return None
        tail = head.rsplit(".", 1)[-1]
        if tail == "Optional":
            return _annotation_type(node.slice)
        return None
    return dotted_name(node)


def _call_of(node: ast.AST) -> Optional[ast.Call]:
    """The ``Call`` a value expression bottoms out in (through IfExp)."""
    if isinstance(node, ast.Call):
        return node
    if isinstance(node, ast.IfExp):
        return _call_of(node.body) or _call_of(node.orelse)
    if isinstance(node, ast.Await):
        return None
    return None


def _is_lockish(dotted: Optional[str], resolved_type: Optional[str]) -> bool:
    if resolved_type in ("asyncio.Lock", "threading.Lock"):
        return True
    if dotted is None:
        return False
    return "lock" in dotted.rsplit(".", 1)[-1].lower()


# -- the graph -----------------------------------------------------------------


class ProjectGraph:
    """Symbol table + call graph + summaries over one lint run's modules.

    Build cost is one extra AST walk per module plus one per function;
    ``benchmarks/test_lint_overhead.py`` gates the full-tree run
    (engine + all families + this graph) at <= 2x the pre-graph time.
    """

    def __init__(self, project: Project):
        self.project = project
        self.modules_by_name: Dict[str, Module] = {}
        self.scopes: Dict[str, ModuleScope] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        #: qualnames of all top-level functions, known from the indexing
        #: pass — resolution during the summary pass must not depend on
        #: the order modules are summarized in.
        self.function_names: Set[str] = set()
        self.classes: Dict[str, ClassInfo] = {}
        self._blocking_memo: Dict[str, Optional[Tuple[str, ...]]] = {}
        #: module-level ``NAME = SomeClass(...)`` assignments, typed only
        #: after every module is indexed (the class may live anywhere).
        self._pending_var_types: List[Tuple[ModuleScope, str, ast.Call]] = []
        for module in project.modules:
            self._index_module(module)
        for scope, var_name, call in self._pending_var_types:
            inferred = self._callable_type(scope, call)
            if inferred is not None:
                scope.var_types[var_name] = inferred
        self._pending_var_types.clear()
        for module in project.modules:
            self._summarize_module(module)

    # -- indexing ------------------------------------------------------------

    def _index_module(self, module: Module) -> None:
        name = module_dotted_name(module)
        scope = ModuleScope(name=name, module=module)
        scope.aliases = _import_map(module, name)
        self.modules_by_name[name] = module
        self.scopes[name] = scope
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{name}.{node.name}"
                scope.functions[node.name] = qual
                self.function_names.add(qual)
            elif isinstance(node, ast.ClassDef):
                qual = f"{name}.{node.name}"
                scope.classes[node.name] = qual
                self._index_class(module, scope, node, qual)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                if isinstance(node, ast.Assign):
                    if len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                else:
                    target = node.target
                call = _call_of(node.value) if node.value is not None else None
                if isinstance(target, ast.Name) and call is not None:
                    self._pending_var_types.append((scope, target.id, call))

    def _index_class(
        self, module: Module, scope: ModuleScope, node: ast.ClassDef, qual: str
    ) -> None:
        info = ClassInfo(qualname=qual, module=module, node=node)
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is not None:
                info.bases.append(dotted)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = f"{qual}.{item.name}"
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                # dataclass-style field annotation
                inferred = _annotation_type(item.annotation)
                if inferred is not None:
                    info.attr_types.setdefault(item.target.id, inferred)
        self.classes[qual] = info

    def _callable_type(
        self, scope: ModuleScope, call: ast.Call
    ) -> Optional[str]:
        """Type of ``call``'s result when the callee is a known class."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        resolved = self._resolve_dotted(scope, dotted)
        if resolved is None:
            return None
        if resolved in self.classes:
            return resolved
        return _KNOWN_EXTERNAL_CLASSES.get(resolved)

    def _resolve_dotted(self, scope: ModuleScope, dotted: str) -> Optional[str]:
        """Absolute dotted target of a possibly-aliased reference."""
        head, _, rest = dotted.partition(".")
        if head in scope.functions:
            absolute = scope.functions[head]
        elif head in scope.classes:
            absolute = scope.classes[head]
        elif head in scope.aliases:
            absolute = scope.aliases[head]
        else:
            absolute = head
        return self._follow_reexports(
            f"{absolute}.{rest}" if rest else absolute
        )

    def _follow_reexports(self, dotted: str, depth: int = 0) -> Optional[str]:
        """Chase ``__init__`` re-exports so ``repro.serve.ThermalServer``
        lands on ``repro.serve.http.ThermalServer``."""
        if depth > 8:
            return dotted
        if dotted in self.function_names or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            scope = self.scopes.get(prefix)
            if scope is None:
                continue
            first = parts[cut]
            rest = parts[cut + 1:]
            if first in scope.functions:
                resolved = scope.functions[first]
            elif first in scope.classes:
                resolved = scope.classes[first]
            elif first in scope.aliases:
                resolved = scope.aliases[first]
            else:
                return dotted
            tail = ".".join([resolved] + rest)
            if tail == dotted:
                return dotted
            return self._follow_reexports(tail, depth + 1)
        return dotted

    # -- summaries -----------------------------------------------------------

    def _summarize_module(self, module: Module) -> None:
        name = module_dotted_name(module)
        scope = self.scopes[name]
        # first pass: infer self-attribute types from every method body so
        # summaries (second pass) can resolve self.<attr>.<method>() calls.
        for class_name, class_qual in scope.classes.items():
            info = self.classes[class_qual]
            for item in info.node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._infer_attr_types(scope, info, item)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarize_function(scope, node, f"{name}.{node.name}", None)
            elif isinstance(node, ast.ClassDef):
                class_qual = f"{name}.{node.name}"
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._summarize_function(
                            scope,
                            item,
                            f"{class_qual}.{item.name}",
                            class_qual,
                        )

    def _infer_attr_types(
        self,
        scope: ModuleScope,
        info: ClassInfo,
        func: ast.AST,
    ) -> None:
        for node in _iter_statements(func, skip_nested=True):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value: Optional[ast.AST] = node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                annotated = _annotation_type(node.annotation)
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and annotated is not None
                ):
                    resolved = self._resolve_dotted(scope, annotated)
                    if resolved in self.classes or (
                        resolved in _KNOWN_EXTERNAL_CLASSES
                    ):
                        info.attr_types.setdefault(
                            target.attr,
                            resolved
                            if resolved in self.classes
                            else _KNOWN_EXTERNAL_CLASSES[resolved],
                        )
                continue
            else:
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            call = _call_of(value) if value is not None else None
            if call is None:
                continue
            inferred = self._callable_type(scope, call)
            if inferred is not None:
                info.attr_types.setdefault(target.attr, inferred)

    def _summarize_function(
        self,
        scope: ModuleScope,
        node: ast.AST,
        qualname: str,
        class_qualname: Optional[str],
    ) -> None:
        summary = FunctionSummary(
            qualname=qualname,
            module=scope.module,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_qualname=class_qualname,
        )
        local_types = self._local_types(scope, node)
        nested: List[Tuple[ast.AST, str]] = []
        for child in ast.iter_child_nodes(node):
            self._walk_body(scope, summary, child, local_types, nested, node)
        self.functions[qualname] = summary
        for inner, inner_qual in nested:
            # nested defs run on their own schedule; summarize separately
            # (without self resolution — closures over self stay unresolved).
            self._summarize_function(scope, inner, inner_qual, None)

    def _local_types(self, scope: ModuleScope, func: ast.AST) -> Dict[str, str]:
        """``x = SomeClass(...)`` locals, plus simple parameter annotations."""
        types: Dict[str, str] = {}
        args = getattr(func, "args", None)
        if args is not None:
            every = list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            )
            for arg in every:
                annotated = _annotation_type(arg.annotation)
                if annotated is None:
                    continue
                resolved = self._resolve_dotted(scope, annotated)
                if resolved in self.classes:
                    types[arg.arg] = resolved
                elif resolved in _KNOWN_EXTERNAL_CLASSES:
                    types[arg.arg] = _KNOWN_EXTERNAL_CLASSES[resolved]
        for node in _iter_statements(func, skip_nested=True):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                call = _call_of(node.value)
                if call is None:
                    continue
                inferred = self._callable_type(scope, call)
                if inferred is not None:
                    types[target.id] = inferred
        return types

    def _walk_body(
        self,
        scope: ModuleScope,
        summary: FunctionSummary,
        node: ast.AST,
        local_types: Dict[str, str],
        nested: List[Tuple[ast.AST, str]],
        owner: ast.AST,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append((node, f"{summary.qualname}.<locals>.{node.name}"))
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Await):
            summary.awaits += 1
        elif isinstance(node, (ast.AsyncFor, ast.AsyncWith)):
            summary.awaits += 1
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                call = expr if isinstance(expr, ast.Call) else None
                probe = call.func if call is not None else expr
                dotted = dotted_name(probe)
                resolved = None
                if call is not None:
                    resolved = self._callable_type(scope, call)
                elif dotted is not None:
                    resolved = self._lookup_value_type(
                        scope, summary, dotted, local_types
                    )
                if _is_lockish(dotted, resolved):
                    label = dotted or resolved or "<lock>"
                    summary.locks_held.append(label)
                    summary.lock_nodes.append((label, node))
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                if isinstance(node.ctx, ast.Load):
                    summary.self_reads.add(node.attr)
                else:
                    summary.self_writes.add(node.attr)
        if isinstance(node, ast.Call):
            site = self.resolve_call(scope, summary, node, local_types)
            summary.calls.append(site)
            if blocking_kind(site.target) and site.kind == "external":
                summary.blocking.append(site)
        for child in ast.iter_child_nodes(node):
            self._walk_body(scope, summary, child, local_types, nested, owner)

    def _lookup_value_type(
        self,
        scope: ModuleScope,
        summary: FunctionSummary,
        dotted: str,
        local_types: Dict[str, str],
    ) -> Optional[str]:
        """Type of a value expression like ``self._lock`` or ``lock``."""
        parts = dotted.split(".")
        if parts[0] == "self" and len(parts) == 2 and summary.class_qualname:
            info = self._class_with_attr(summary.class_qualname, parts[1])
            if info is not None:
                return info.attr_types[parts[1]]
            return None
        if len(parts) == 1:
            return local_types.get(parts[0]) or scope.var_types.get(parts[0])
        return None

    # -- resolution ----------------------------------------------------------

    def _class_with_attr(
        self, class_qualname: str, attr: str
    ) -> Optional[ClassInfo]:
        """The class (walking project bases) defining ``attr``'s type."""
        seen: Set[str] = set()
        current: Optional[str] = class_qualname
        while current is not None and current not in seen:
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return None
            if attr in info.attr_types:
                return info
            current = self._first_project_base(info)
        return None

    def _first_project_base(self, info: ClassInfo) -> Optional[str]:
        scope = self.scopes[module_dotted_name(info.module)]
        for base in info.bases:
            resolved = self._resolve_dotted(scope, base)
            if resolved in self.classes:
                return resolved
        return None

    def _method_on(self, class_qualname: str, method: str) -> Optional[str]:
        """Method qualname on a class or its (project-resolved) bases."""
        seen: Set[str] = set()
        current: Optional[str] = class_qualname
        while current is not None and current not in seen:
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return None
            if method in info.methods:
                return info.methods[method]
            current = self._first_project_base(info)
        return None

    def resolve_call(
        self,
        scope: ModuleScope,
        summary: FunctionSummary,
        call: ast.Call,
        local_types: Optional[Dict[str, str]] = None,
    ) -> CallSite:
        """Resolve one call expression to a :class:`CallSite`."""
        local_types = local_types if local_types is not None else {}
        func = call.func
        # chained receiver: Path(p).read_text(), SomeClass().method()
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call):
            receiver = self._callable_type(scope, func.value)
            if receiver is not None:
                return self._method_site(call, receiver, func.attr)
            return CallSite(call, None, "unresolved")
        dotted = dotted_name(func)
        if dotted is None:
            return CallSite(call, None, "unresolved")
        parts = dotted.split(".")
        if parts[0] == "self" and summary.class_qualname is not None:
            if len(parts) == 2:
                target = self._method_on(summary.class_qualname, parts[1])
                if target is not None:
                    return CallSite(call, target, "project")
                return CallSite(call, None, "unresolved")
            if len(parts) == 3:
                info = self._class_with_attr(summary.class_qualname, parts[1])
                if info is not None:
                    return self._method_site(
                        call, info.attr_types[parts[1]], parts[2]
                    )
            return CallSite(call, None, "unresolved")
        if parts[0] == "self":
            return CallSite(call, None, "unresolved")
        # typed local / module var receiver: x.method()
        if len(parts) == 2:
            receiver = local_types.get(parts[0]) or scope.var_types.get(
                parts[0]
            )
            if receiver is not None:
                return self._method_site(call, receiver, parts[1])
        resolved = self._resolve_dotted(scope, dotted)
        if resolved is None:
            return CallSite(call, None, "unresolved")
        if resolved in self.function_names:
            return CallSite(call, resolved, "project")
        if resolved in self.classes:
            # instantiation: the edge is the constructor, when one exists
            init = self._method_on(resolved, "__init__")
            return CallSite(call, init if init is not None else resolved, "project")
        # Class.method / Class.classmethod on a project class
        if len(parts) >= 2:
            head = ".".join(resolved.split(".")[:-1])
            if head in self.classes:
                target = self._method_on(head, resolved.split(".")[-1])
                if target is not None:
                    return CallSite(call, target, "project")
                return CallSite(call, None, "unresolved")
        if len(parts) == 1 and resolved == dotted:
            # a bare name that no import or definition explains: builtin
            # (open/input are the ones the rules care about) or a local
            # callable we cannot type — never guess "external" for the
            # latter, a parameter named like a primitive must not flag.
            if resolved in ("open", "input"):
                return CallSite(call, resolved, "external")
            return CallSite(call, None, "unresolved")
        return CallSite(call, resolved, "external")

    def _method_site(
        self, call: ast.Call, receiver_type: str, method: str
    ) -> CallSite:
        if receiver_type in self.classes:
            target = self._method_on(receiver_type, method)
            if target is not None:
                return CallSite(call, target, "project")
            return CallSite(call, None, "unresolved")
        return CallSite(call, f"{receiver_type}.{method}", "external")

    # -- queries -------------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        return self.functions.get(qualname)

    def async_roots(self) -> List[FunctionSummary]:
        """Async functions in the analyzed scope, sorted by qualname."""
        return [
            summary
            for _, summary in sorted(self.functions.items())
            if summary.is_async and self.in_async_scope(summary.module)
        ]

    @staticmethod
    def in_async_scope(module: Module) -> bool:
        """Whether a module's helpers are traversed by the async rules.

        The serve/obs packages plus top-level ``repro`` modules; the
        simulation core is a traversal boundary (see module docstring).
        """
        parts = module.repro_parts
        if not parts:
            return False
        if len(parts) == 2:  # ('repro', 'parallel.py') — top-level module
            return True
        return parts[1] in ASYNC_SCOPE_SUBPACKAGES

    def blocking_chain(self, qualname: str) -> Optional[Tuple[str, ...]]:
        """Call chain from ``qualname`` to a blocking primitive, or None.

        The chain lists the project functions traversed (``qualname``
        first) and ends with the blocking target itself.  Traversal
        never enters async functions (each is its own analysis root),
        functions outside the async scope, or cycles.
        """
        if qualname in self._blocking_memo:
            return self._blocking_memo[qualname]
        self._blocking_memo[qualname] = None  # cycle guard
        summary = self.functions.get(qualname)
        if summary is None:
            return None
        chain: Optional[Tuple[str, ...]] = None
        if summary.blocking:
            site = min(summary.blocking, key=lambda s: s.line)
            chain = (qualname, site.target or "<blocking>")
        else:
            for site in summary.calls:
                if site.kind != "project" or site.target is None:
                    continue
                callee = self.functions.get(site.target)
                if callee is None or callee.is_async:
                    continue
                if not self.in_async_scope(callee.module):
                    continue
                sub = self.blocking_chain(site.target)
                if sub is not None:
                    chain = (qualname,) + sub
                    break
        self._blocking_memo[qualname] = chain
        return chain

    def to_dict(self) -> Dict[str, object]:
        """JSON form of the whole graph (the ``--graph-dump`` payload)."""
        return {
            "modules": sorted(self.modules_by_name),
            "functions": {
                qualname: summary.to_dict()
                for qualname, summary in sorted(self.functions.items())
            },
        }

"""``python -m repro.lint`` — the domain-lint CLI gate.

- ``check [paths...]`` — lint the tree (default ``src/repro``); exit
  status 1 when any non-baselined finding remains (the CI gate), 2 on
  usage errors — the same convention as ``python -m repro.obs check``;
- ``rules`` — the rule catalogue with families and descriptions.

``--baseline FILE`` subtracts grandfathered findings;
``--write-baseline FILE`` snapshots the current findings so a newly
adopted rule starts from a clean gate.  ``--select`` restricts the run to
a comma-separated set of rule ids **or families** (``--select
async-safety`` runs the five async rules) — the same vocabulary as the
``# lint: ignore[...]`` suppression form; it works for ``rules`` too.

``check`` keeps an incremental findings cache (``.lint-cache.json``,
content-hashed — see :mod:`repro.lint.cache`) so unchanged files skip
the per-file rule walks; ``--no-cache`` bypasses it and ``--cache FILE``
relocates it.  ``--graph-dump`` prints the project call graph
(:mod:`repro.lint.graph`) as JSON instead of linting — the debugging
view of what the ``async-safety`` family sees.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from .._cli import (
    EXIT_FINDINGS,
    EXIT_OK,
    main_with_exit,
    print_json,
    render_table,
    run_cli,
)
from .baseline import load_baseline, partition, save_baseline
from .cache import DEFAULT_CACHE_PATH, LintCache, rules_signature
from .engine import Project, collect_files, default_rules, parse_module, run_lint
from .findings import Finding

DEFAULT_PATHS = ("src/repro",)


def _selected_rules(select: Optional[str]):
    rules = default_rules()
    if not select:
        return rules
    wanted = {token.strip() for token in select.split(",") if token.strip()}
    chosen = [r for r in rules if r.id in wanted or r.family in wanted]
    known = {r.id for r in rules} | {r.family for r in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule ids/families: {', '.join(sorted(unknown))}"
        )
    return chosen


def _render_findings(findings: List[Finding], title: str) -> str:
    if not findings:
        return f"{title}\n(no findings)"
    rows = [
        [f.location, f.rule, f.severity, f.message] for f in findings
    ]
    return render_table(
        ["location", "rule", "severity", "message"], rows, title=title
    )


def _cmd_graph_dump(paths: Sequence[object]) -> int:
    modules = []
    for path in collect_files(paths):
        module, _parse_finding = parse_module(path)
        if module is not None:
            modules.append(module)
    print_json(Project(modules).graph().to_dict())
    return EXIT_OK


def _cmd_check(args: argparse.Namespace) -> int:
    paths = args.paths or list(DEFAULT_PATHS)
    if args.graph_dump:
        return _cmd_graph_dump(paths)
    rules = _selected_rules(args.select)
    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache = LintCache(
            Path(args.cache), rules_signature(r.id for r in rules)
        )
    findings = run_lint(paths, rules=rules, cache=cache)
    if args.write_baseline:
        save_baseline(args.write_baseline, findings)
        print(
            f"wrote baseline {args.write_baseline} "
            f"({len(findings)} fingerprints)"
        )
        return EXIT_OK
    grandfathered: List[Finding] = []
    if args.baseline:
        new, grandfathered = partition(findings, load_baseline(args.baseline))
        findings = new
    if args.json:
        payload = {
            "paths": [str(p) for p in paths],
            "findings": [f.to_dict() for f in findings],
            "families": sorted({f.family for f in findings}),
            "grandfathered": len(grandfathered),
        }
        if cache is not None:
            payload["cache"] = {"hits": cache.hits, "misses": cache.misses}
        print_json(payload)
    else:
        title = f"repro.lint check {' '.join(str(p) for p in paths)}"
        print(_render_findings(findings, title))
        summary = f"{len(findings)} finding(s)"
        if grandfathered:
            summary += f", {len(grandfathered)} grandfathered by baseline"
        if cache is not None:
            summary += (
                f" [cache: {cache.hits} unchanged, {cache.misses} analyzed]"
            )
        print(summary)
    return EXIT_FINDINGS if findings else EXIT_OK


def _cmd_rules(args: argparse.Namespace) -> int:
    rules = _selected_rules(args.select)
    if args.json:
        print_json(
            [
                {
                    "id": r.id,
                    "family": r.family,
                    "severity": r.severity,
                    "description": r.description,
                }
                for r in rules
            ]
        )
        return EXIT_OK
    rows = [[r.id, r.family, r.severity, r.description] for r in rules]
    print(
        render_table(
            ["rule", "family", "severity", "description"],
            rows,
            title=f"{len(rows)} registered rules",
        )
    )
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Domain-aware static analysis (see docs/lint.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser(
        "check", help="lint the tree (exit 1 on new findings)"
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    p_check.add_argument(
        "--baseline",
        help="baseline JSON of grandfathered findings to subtract",
    )
    p_check.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot current findings as the new baseline and exit 0",
    )
    p_check.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids/families to run (default: all)",
    )
    p_check.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental findings cache",
    )
    p_check.add_argument(
        "--cache",
        metavar="FILE",
        default=DEFAULT_CACHE_PATH,
        help=f"cache file location (default: {DEFAULT_CACHE_PATH})",
    )
    p_check.add_argument(
        "--graph-dump",
        action="store_true",
        help="print the project call graph as JSON instead of linting",
    )
    p_check.add_argument("--json", action="store_true", help="machine output")
    p_check.set_defaults(func=_cmd_check)

    p_rules = sub.add_parser("rules", help="list the rule catalogue")
    p_rules.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids/families to list (default: all)",
    )
    p_rules.add_argument("--json", action="store_true", help="machine output")
    p_rules.set_defaults(func=_cmd_rules)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_cli(lambda: args.func(args))


if __name__ == "__main__":
    main_with_exit(main)

"""Structured lint findings.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain frozen dataclasses so they can be sorted, compared, serialized to
JSON (``--json`` CLI output) and fingerprinted for baseline files.

The *fingerprint* deliberately excludes the line number: baselines must
survive unrelated edits that shift code up or down, so a grandfathered
finding is identified by *what* fired *where* (rule id, file, message), not
by the exact line it currently sits on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Finding severities, ordered from most to least severe.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: file the finding is in (posix-style, as passed to the engine).
    path: str
    #: 1-based source line.
    line: int
    #: rule identifier, e.g. ``unit-raw-literal``.
    rule: str
    #: human-readable description of the violation (includes the fix hint).
    message: str
    #: ``error`` or ``warning`` (both fail the gate; severity is advisory).
    severity: str = field(default="error", compare=False)
    #: rule family, e.g. ``unit-safety`` (used by suppression comments).
    family: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity {self.severity!r} not in {SEVERITIES}"
            )

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.message}"

    @property
    def location(self) -> str:
        """``path:line`` form for reports."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``--json`` record shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "family": self.family,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
            family=str(data.get("family", "")),
        )

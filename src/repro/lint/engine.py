"""AST-walking rule engine for the domain lint.

The engine parses every ``*.py`` file under the requested paths once,
wraps each in a :class:`Module` (source, line table, AST, location helpers)
and dispatches two kinds of checks from the rule registry:

- :meth:`Rule.check_module` — per-file AST inspection;
- :meth:`Rule.check_project` — whole-tree checks that need to see several
  files at once (e.g. "every scheduler subclass is exported from
  ``repro.sched``").

Findings on a line carrying a ``# lint: ignore[rule-id]`` comment are
suppressed (a bare ``# lint: ignore`` suppresses every rule; the bracket
form accepts rule ids and rule families).  The engine is stdlib-only by
design — it must run in environments without the numeric stack.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import LintCache
    from .graph import ProjectGraph

#: Subpackages of ``repro`` that must be bit-deterministic under a seed.
#: The batched engine (``sim/batch.py``, ``thermal/batched_state.py``)
#: is covered here: its whole contract is that a fused sweep is
#: byte-identical to solo runs, which a clock or global-RNG read would
#: silently break per-row.
DETERMINISTIC_SUBPACKAGES = ("sim", "sched", "thermal", "core")

#: Top-level ``repro`` modules held to the same determinism rules; an
#: entry with a trailing slash covers a whole package.  The parallel
#: runner's contract is that a sweep's results (and now its retry/backoff
#: schedule) are a pure function of its seeds, and the fault injector's
#: is that a fault schedule replays bit-exactly from ``FaultsConfig.seed``
#: — a wall-clock or global-RNG read in either silently breaks that.
#: The serve layer joins them: identical request payloads must yield
#: identical answers (cached or not), and its load generator replays a
#: request tape that is a pure function of its seed — monotonic clocks
#: (``loop.time()``, ``perf_counter``) are fine for latency measurement,
#: calendar time is not.  The span tracer joins for the same reason:
#: trace/span ids are monotonic counters and durations come from
#: ``perf_counter`` only, so a span JSONL is replayable and two traced
#: runs differ only in their (excluded-by-convention) timing fields.
#: The traffic layer is determinism-critical by construction: every
#: arrival schedule (and its JSONL trace) is a pure function of its seed.
DETERMINISTIC_MODULES = (
    "parallel.py",
    "faults/",
    "serve/",
    "obs/spans.py",
    "traffic/",
)

#: Rule id reported for files the engine cannot parse.
PARSE_ERROR_RULE = "parse-error"

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<ids>[^\]]*)\])?")


# -- parsed modules ------------------------------------------------------------


@dataclass
class Module:
    """One parsed source file plus location helpers for rules."""

    path: Path
    #: path as reported in findings (posix, relative to the cwd if possible).
    display: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def name(self) -> str:
        return self.path.name

    @property
    def repro_parts(self) -> Tuple[str, ...]:
        """Path components from the innermost ``repro`` directory onward.

        Empty when the file does not live under a ``repro`` tree; this is
        how rules scope themselves to subpackages without importing
        anything (and how tests exercise them from snippet directories).
        """
        parts = self.path.parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return parts[index:]
        return ()

    @property
    def subpackage(self) -> Optional[str]:
        """Direct subpackage under ``repro`` (``"sim"``), or ``None``."""
        parts = self.repro_parts
        if len(parts) >= 3:  # ('repro', '<sub>', ..., 'file.py')
            return parts[1]
        return None

    def line_text(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def segment(self, node: ast.AST) -> str:
        """Verbatim source text of ``node`` (best effort)."""
        lineno = getattr(node, "lineno", None)
        end_lineno = getattr(node, "end_lineno", None)
        col = getattr(node, "col_offset", None)
        end_col = getattr(node, "end_col_offset", None)
        if None in (lineno, end_lineno, col, end_col):
            return ""
        if lineno == end_lineno:
            return self.line_text(lineno)[col:end_col]
        parts = [self.line_text(lineno)[col:]]
        parts.extend(self.line_text(n) for n in range(lineno + 1, end_lineno))
        parts.append(self.line_text(end_lineno)[:end_col])
        return "\n".join(parts)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a finding for ``node`` attributed to ``rule``."""
        return Finding(
            path=self.display,
            line=getattr(node, "lineno", 1) or 1,
            rule=rule.id,
            message=message,
            severity=rule.severity,
            family=rule.family,
        )


@dataclass
class Project:
    """All modules of one lint run, for cross-file rules."""

    modules: List[Module]
    _graph: Optional[object] = field(default=None, repr=False, compare=False)

    def graph(self) -> "ProjectGraph":
        """The project's call graph, built lazily and cached.

        Several ``async-safety`` rules share one run's graph; building it
        costs one extra AST walk per module (see
        :mod:`repro.lint.graph`), so per-file-only runs never pay for it.
        """
        if self._graph is None:
            from .graph import ProjectGraph

            self._graph = ProjectGraph(self)
        return self._graph  # type: ignore[return-value]

    def by_suffix(self, *suffix: str) -> Iterator[Module]:
        """Modules whose ``repro_parts`` end with ``suffix``."""
        for module in self.modules:
            if module.repro_parts[-len(suffix):] == suffix:
                yield module

    def in_subpackage(self, subpackage: str) -> Iterator[Module]:
        """Modules directly or transitively under ``repro/<subpackage>/``."""
        for module in self.modules:
            if module.subpackage == subpackage:
                yield module


# -- rules and registry --------------------------------------------------------


class Rule(abc.ABC):
    """One named invariant check.

    Subclasses set the class attributes and implement ``check_module``
    and/or ``check_project``.  Registered rules are instantiated fresh for
    every :func:`run_lint` call, so they may keep per-run state.
    """

    #: unique kebab-case identifier (used in reports and suppressions).
    id: str = ""
    #: rule family (one of the families catalogued in ``docs/lint.md``).
    family: str = ""
    #: default severity for this rule's findings.
    severity: str = "error"
    #: one-line human description (shown by ``repro.lint rules``).
    description: str = ""

    def applies_to(self, module: Module) -> bool:
        """Whether ``check_module`` should run on ``module``."""
        return True

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Per-file findings (default: none)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Whole-tree findings (default: none)."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    existing = _REGISTRY.get(rule_cls.id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    from . import rules as _rules  # noqa: F401  (imports register the rules)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    """Sorted ids of all registered rules."""
    from . import rules as _rules  # noqa: F401

    return sorted(_REGISTRY)


def rule_families() -> List[str]:
    """Sorted distinct families of all registered rules.

    Families are first-class selectors everywhere a rule id is accepted:
    ``--select``, ``# lint: ignore[...]`` and the ``family`` key of JSON
    records all speak the same vocabulary.
    """
    from . import rules as _rules  # noqa: F401

    return sorted({rule_cls.family for rule_cls in _REGISTRY.values()})


# -- engine --------------------------------------------------------------------


def _display_path(path: Path) -> str:
    try:
        return path.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(paths: Sequence[object]) -> List[Path]:
    """All ``*.py`` files under ``paths`` (files kept as-is), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)  # type: ignore[arg-type]
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def parse_module(path: Path) -> Tuple[Optional[Module], Optional[Finding]]:
    """Parse one file; on syntax errors return a ``parse-error`` finding."""
    display = _display_path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            path=display,
            line=exc.lineno or 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
            severity="error",
            family="engine",
        )
    return Module(path=path, display=display, source=source, tree=tree), None


def _suppressed(finding: Finding, modules: Dict[str, Module]) -> bool:
    module = modules.get(finding.path)
    if module is None:
        return False
    match = _IGNORE_RE.search(module.line_text(finding.line))
    if match is None:
        return False
    ids = match.group("ids")
    if ids is None:
        return True
    tokens = {t.strip() for t in re.split(r"[,\s]+", ids) if t.strip()}
    return finding.rule in tokens or (finding.family in tokens)


def has_project_pass(rule: Rule) -> bool:
    """Whether ``rule`` overrides :meth:`Rule.check_project`.

    Project-pass rules see the whole tree at once, so the incremental
    cache can never skip them — one changed file may flip a finding in
    another (that is the point of the call graph).
    """
    return type(rule).check_project is not Rule.check_project


def run_lint(
    paths: Sequence[object],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional["LintCache"] = None,
) -> List[Finding]:
    """Lint every ``*.py`` file under ``paths`` and return sorted findings.

    Suppression comments are honored; parse failures surface as
    ``parse-error`` findings rather than exceptions, so one broken file
    cannot hide findings in the rest of the tree.

    When ``cache`` is given (see :class:`repro.lint.cache.LintCache`),
    per-module findings of unchanged files — keyed by a BLAKE2b content
    hash — are served from it instead of re-running the per-file rules.
    Cached entries are stored post-suppression (suppression comments live
    in the same file as the findings they silence, so any edit that could
    change the outcome also changes the hash).  Project-pass rules always
    re-run; parse errors are never cached.
    """
    active = list(rules) if rules is not None else default_rules()
    findings: List[Finding] = []
    modules: List[Module] = []
    for path in collect_files(paths):
        module, parse_finding = parse_module(path)
        if parse_finding is not None:
            findings.append(parse_finding)
        if module is not None:
            modules.append(module)
    by_display = {module.display: module for module in modules}
    for module in modules:
        cached = cache.lookup(module) if cache is not None else None
        if cached is not None:
            findings.extend(cached)
            continue
        per_module: List[Finding] = []
        for rule in active:
            if rule.applies_to(module):
                per_module.extend(rule.check_module(module))
        per_module = [f for f in per_module if not _suppressed(f, by_display)]
        if cache is not None:
            cache.store(module, per_module)
        findings.extend(per_module)
    project = Project(modules)
    project_findings: List[Finding] = []
    for rule in active:
        project_findings.extend(rule.check_project(project))
    findings.extend(
        f for f in project_findings if not _suppressed(f, by_display)
    )
    if cache is not None:
        cache.save(module.display for module in modules)
    return sorted(findings)


# -- small AST helpers shared by rules -----------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attribute_chain(node: ast.AST) -> List[str]:
    """Name components of an attribute chain (``self.cfg.x`` -> [...])."""
    name = dotted_name(node)
    return name.split(".") if name else []


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted things they import.

    ``import time as _time`` maps ``_time -> time``; ``from time import
    time`` maps ``time -> time.time``.  Used to resolve call targets back
    to their defining module regardless of aliasing.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def resolve_call_target(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted target of ``call`` after alias resolution."""
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head

"""Domain-aware static analysis for the reproduction.

The interpreter never checks the conventions this codebase's physics
rests on: temperatures are Celsius-compatible differences from ambient
(``repro.units``), configs are frozen dataclasses, simulations are
bit-deterministic under a seed, and schedulers honor the
``sched.base.Scheduler`` contract.  ``repro.lint`` machine-checks those
invariants over the source tree — violations corrupt the analytic
``T_peak`` bound silently rather than raising, so they must be caught
before run time.

Library entry point::

    from repro.lint import run_lint
    findings = run_lint(["src/repro"])

CLI gate (exit 1 on findings)::

    python -m repro.lint check src/repro --baseline lint-baseline.json

Beyond the per-file rules, the engine builds a whole-tree call graph on
demand (:mod:`repro.lint.graph`, via :meth:`Project.graph`) for the
``async-safety`` family: flow- and reachability-sensitive checks that
the single-threaded asyncio serve loop never blocks, races on shared
state across an ``await``, or leaks request-scoped ContextVars.
Unchanged files are served from a content-hashed incremental cache
(:mod:`repro.lint.cache`).

See ``docs/lint.md`` for the rule catalogue and the suppression /
baseline workflow.  The package is deliberately stdlib-only.
"""

from .baseline import load_baseline, partition, save_baseline
from .cache import LintCache, rules_signature
from .engine import (
    Module,
    Project,
    Rule,
    collect_files,
    default_rules,
    has_project_pass,
    register,
    rule_families,
    rule_ids,
    run_lint,
)
from .findings import Finding
from .graph import ProjectGraph

__all__ = [
    "Finding",
    "LintCache",
    "Module",
    "Project",
    "ProjectGraph",
    "Rule",
    "collect_files",
    "default_rules",
    "has_project_pass",
    "load_baseline",
    "partition",
    "register",
    "rule_families",
    "rule_ids",
    "rules_signature",
    "run_lint",
    "save_baseline",
]

"""Domain-aware static analysis for the reproduction.

The interpreter never checks the conventions this codebase's physics
rests on: temperatures are Celsius-compatible differences from ambient
(``repro.units``), configs are frozen dataclasses, simulations are
bit-deterministic under a seed, and schedulers honor the
``sched.base.Scheduler`` contract.  ``repro.lint`` machine-checks those
invariants over the source tree — violations corrupt the analytic
``T_peak`` bound silently rather than raising, so they must be caught
before run time.

Library entry point::

    from repro.lint import run_lint
    findings = run_lint(["src/repro"])

CLI gate (exit 1 on findings)::

    python -m repro.lint check src/repro --baseline lint-baseline.json

See ``docs/lint.md`` for the rule catalogue and the suppression /
baseline workflow.  The package is deliberately stdlib-only.
"""

from .baseline import load_baseline, partition, save_baseline
from .engine import (
    Module,
    Project,
    Rule,
    collect_files,
    default_rules,
    register,
    rule_ids,
    run_lint,
)
from .findings import Finding

__all__ = [
    "Finding",
    "Module",
    "Project",
    "Rule",
    "collect_files",
    "default_rules",
    "load_baseline",
    "partition",
    "register",
    "rule_ids",
    "run_lint",
    "save_baseline",
]

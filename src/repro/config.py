"""System configuration — the single source of truth for Table I.

Every experiment and substrate module draws its parameters from
:class:`SystemConfig`.  :func:`table1` returns the 64-core configuration of
the paper's evaluation (Table I); :func:`motivational` returns the 16-core
configuration of the motivational example (Fig. 2).

Paper parameters (Table I and Section VI):

====================  ======================================
Number of cores       64 (8x8 mesh)
Core model            x86, 4.0 GHz, 14 nm, out-of-order
L1 I/D cache          16/16 KB, 8/8-way, 64 B blocks
LLC                   128 KB per core, 16-way, 64 B blocks
NoC latency           1.5 ns per hop
NoC link width        256 bit
Core area             0.81 mm^2
Thermal headroom      1 degC
Idle core power       0.3 W
Initial rotation      0.5 ms
Ambient temperature   45 degC
DTM threshold         70 degC
====================  ======================================
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional

from . import units


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry from Table I."""

    l1i_size_bytes: int = 16 * 1024
    l1d_size_bytes: int = 16 * 1024
    l1_associativity: int = 8
    llc_bank_size_bytes: int = 128 * 1024
    llc_associativity: int = 16
    block_size_bytes: int = 64
    #: Fraction of private-cache lines that are live (must be re-fetched after
    #: a migration).  HotSniper observes warm caches are mostly full.
    live_line_fraction: float = 0.8
    #: Fraction of live lines that are dirty and must be written back to the
    #: shared LLC before the thread can restart elsewhere.
    dirty_line_fraction: float = 0.25

    @property
    def private_bytes(self) -> int:
        """Total private cache state lost on a migration (L1 I + L1 D)."""
        return self.l1i_size_bytes + self.l1d_size_bytes

    @property
    def private_lines(self) -> int:
        """Number of private cache lines."""
        return self.private_bytes // self.block_size_bytes


@dataclass(frozen=True)
class NocConfig:
    """Network-on-chip parameters from Table I (XY-routed mesh)."""

    hop_latency_s: float = units.ns(1.5)
    link_width_bits: int = 256
    #: Fixed LLC bank access time excluding NoC traversal.
    bank_access_latency_s: float = units.ns(4.0)
    #: Round trips per LLC access (request + response).
    round_trip_factor: float = 2.0


@dataclass(frozen=True)
class DvfsConfig:
    """Voltage/frequency operating range (Section VI: 100 MHz steps)."""

    f_min_hz: float = units.ghz(1.0)
    f_max_hz: float = units.ghz(4.0)
    f_step_hz: float = units.mhz(100.0)
    #: Supply voltage at the minimum / maximum frequency; voltage is
    #: interpolated linearly in frequency between these anchors (a standard
    #: approximation of published V/f tables for 14 nm parts).
    v_min: float = 0.60
    v_max: float = 1.20

    def frequencies(self) -> tuple:
        """All supported frequencies, ascending, f_min..f_max inclusive."""
        count = int(round((self.f_max_hz - self.f_min_hz) / self.f_step_hz)) + 1
        return tuple(self.f_min_hz + i * self.f_step_hz for i in range(count))

    def voltage(self, f_hz: float) -> float:
        """Supply voltage at frequency ``f_hz`` (linear V/f interpolation)."""
        if not (self.f_min_hz <= f_hz <= self.f_max_hz):
            raise ValueError(
                f"frequency {f_hz/1e9:.2f} GHz outside "
                f"[{self.f_min_hz/1e9:.2f}, {self.f_max_hz/1e9:.2f}] GHz"
            )
        span = self.f_max_hz - self.f_min_hz
        frac = (f_hz - self.f_min_hz) / span
        return self.v_min + frac * (self.v_max - self.v_min)


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal environment and management thresholds (Section VI)."""

    ambient_c: float = 45.0
    dtm_threshold_c: float = 70.0
    headroom_delta_c: float = 1.0
    idle_power_w: float = 0.3
    #: DTM hysteresis: throttling stops once the hottest core cools this far
    #: below the threshold.
    dtm_hysteresis_c: float = 2.0


@dataclass(frozen=True)
class ObservabilityConfig:
    """Which observability components the engine attaches (all off by
    default — the zero-overhead path; see ``docs/observability.md``).

    When any flag is set the engine builds a matching
    :class:`~repro.obs.observer.Observer` and exposes it as
    ``IntervalSimulator.observer`` after construction.
    """

    #: record structured per-interval trace records (JSONL-exportable).
    trace: bool = False
    #: maintain a metrics registry, snapshotted into the result.
    metrics: bool = False
    #: time engine phases with wall-clock profiling hooks.
    profiling: bool = False
    #: stream trace records to this JSONL file instead of buffering them in
    #: memory (:class:`~repro.obs.sink.JsonlTraceSink`); implies tracing.
    trace_path: Optional[str] = None

    @property
    def any_enabled(self) -> bool:
        """True when at least one component is switched on."""
        return bool(
            self.trace or self.metrics or self.profiling or self.trace_path
        )


@dataclass(frozen=True)
class FaultsConfig:
    """Deterministic fault-injection configuration (all off by default).

    When ``enabled`` the engine builds a
    :class:`~repro.faults.FaultInjector` seeded with ``seed`` and applies
    the configured fault models each interval (``docs/faults.md``):

    - **sensor faults** perturb the temperature readings *schedulers* see
      (through :meth:`repro.sched.base.Scheduler.observed_temperatures`),
      never the ground-truth thermal state or the hardware DTM input;
    - **power spikes** add transient ground-truth power on random cores;
    - **core stuck-throttled faults** force cores to ``f_min`` for a while
      regardless of temperature;
    - **migration failures** abort individual placement hops, leaving the
      thread on its source core (the scheduler must re-plan).

    The staleness thresholds drive the graceful-degradation ladder
    (``normal`` -> ``degraded`` -> ``safe-park``); see
    :meth:`repro.sched.base.Scheduler.finalize_decision`.
    """

    enabled: bool = False
    #: base seed of the injector's RNG streams (one stream per fault class).
    seed: int = 0
    #: Gaussian sensor noise sigma [degC] added to every reading.
    sensor_noise_sigma_c: float = 0.0
    #: constant sensor bias [degC] added to every reading.
    sensor_bias_c: float = 0.0
    #: per-core per-interval probability that a sensor drops out (NaN).
    sensor_dropout_prob: float = 0.0
    #: duration of one dropout episode.
    sensor_dropout_duration_s: float = units.ms(2.0)
    #: per-core per-interval probability that a sensor latches (stuck-at).
    sensor_stuck_prob: float = 0.0
    #: duration of one stuck-at episode.
    sensor_stuck_duration_s: float = units.ms(5.0)
    #: per-core per-interval probability of a transient power spike.
    power_spike_prob: float = 0.0
    #: extra ground-truth power [W] a spiking core draws.
    power_spike_w: float = 0.0
    #: duration of one power spike.
    power_spike_duration_s: float = units.ms(1.0)
    #: per-core per-interval probability of a stuck-throttled fault.
    core_stuck_prob: float = 0.0
    #: duration the faulty core stays pinned at ``f_min``.
    core_stuck_duration_s: float = units.ms(5.0)
    #: per-hop probability that a planned thread migration aborts.
    migration_failure_prob: float = 0.0
    #: sensor staleness beyond which schedulers enter ``degraded`` mode.
    degraded_staleness_s: float = units.ms(2.0)
    #: sensor staleness beyond which schedulers park at ``f_min``.
    park_staleness_s: float = units.ms(10.0)


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of a simulated S-NUCA many-core."""

    mesh_width: int = 8
    mesh_height: int = 8
    core_area_m2: float = units.mm2(0.81)
    cache: CacheConfig = field(default_factory=CacheConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    dvfs: DvfsConfig = field(default_factory=DvfsConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    obs: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    faults: FaultsConfig = field(default_factory=FaultsConfig)
    #: Initial synchronous rotation interval tau (Section VI: 0.5 ms).
    rotation_interval_s: float = units.ms(0.5)
    #: Simulator interval length (HotSniper-style interval simulation).
    sim_interval_s: float = units.ms(0.5)
    #: Power-history window used by Algorithm 1 (Section V: last 10 ms).
    power_history_window_s: float = units.ms(10.0)

    @property
    def n_cores(self) -> int:
        """Number of cores in the mesh."""
        return self.mesh_width * self.mesh_height

    @property
    def core_edge_m(self) -> float:
        """Edge length of one (square) core block in metres."""
        return math.sqrt(self.core_area_m2)

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def with_observability(
        self,
        trace: bool = False,
        metrics: bool = False,
        profiling: bool = False,
        trace_path: Optional[str] = None,
    ) -> "SystemConfig":
        """Copy of this configuration with the given observability flags.

        ``trace_path`` switches the trace from in-memory buffering to a
        streaming JSONL sink writing to that file.
        """
        return self.replace(
            obs=ObservabilityConfig(
                trace=trace,
                metrics=metrics,
                profiling=profiling,
                trace_path=trace_path,
            )
        )

    def with_faults(self, **parameters) -> "SystemConfig":
        """Copy of this configuration with fault injection enabled.

        Keyword arguments are :class:`FaultsConfig` fields (fault
        probabilities, amplitudes, durations, staleness thresholds); the
        resulting configuration has ``faults.enabled`` set.  Mirrors
        :meth:`with_observability` — the default configuration keeps every
        fault model off and the engine's fault path entirely dormant.
        """
        return self.replace(faults=FaultsConfig(enabled=True, **parameters))


def table1() -> SystemConfig:
    """The 64-core evaluation platform of the paper (Table I)."""
    return SystemConfig(mesh_width=8, mesh_height=8)


def motivational() -> SystemConfig:
    """The 16-core platform of the motivational example (Figs. 1-2)."""
    return SystemConfig(mesh_width=4, mesh_height=4)


def small_test() -> SystemConfig:
    """A tiny 2x2 platform for fast unit tests."""
    return SystemConfig(mesh_width=2, mesh_height=2)


#: Convenience re-export of the peak frequency (Table I core model).
PEAK_FREQUENCY_HZ = units.ghz(4.0)

"""repro: reproduction of "Thermal Management for S-NUCA Many-Cores via
Synchronous Thread Rotations" (Shen, Niknam, Pathania, Pimentel — DATE 2023).

The package provides:

- :mod:`repro.thermal` — HotSpot-style RC thermal model + MatEx solver;
- :mod:`repro.arch` — mesh NoC, AMD rings, S-NUCA LLC, migration costs;
- :mod:`repro.power` — power model, DVFS operating points, TSP budgets;
- :mod:`repro.workload` — synthetic PARSEC profiles, tasks, generators;
- :mod:`repro.core` — the paper's contribution: analytic rotation peak
  temperature (Algorithm 1) and the HotPotato heuristic (Algorithm 2);
- :mod:`repro.sim` — HotSniper-like interval thermal simulator;
- :mod:`repro.sched` — HotPotato runtime + PCMig/PCGov/naive baselines;
- :mod:`repro.experiments` — regeneration of every table and figure.

Quickstart::

    from repro import config
    from repro.sim import IntervalSimulator
    from repro.sched import HotPotatoScheduler
    from repro.workload import homogeneous_fill, materialize

    cfg = config.table1()
    tasks = materialize(homogeneous_fill("blackscholes", cfg.n_cores))
    result = IntervalSimulator(cfg, HotPotatoScheduler(), tasks).run()
    print(result.summary())
"""

from . import config, units

__version__ = "1.0.0"

__all__ = ["config", "units", "__version__"]

"""Trace analytics: derived per-run statistics from a structured trace.

Pure functions over a :class:`~repro.obs.trace.TraceRecorder` (in memory or
reloaded from JSONL).  Everything here is deterministic and free of engine
dependencies, so a saved trace can be re-analyzed long after the run:

- :func:`thermal_stats` — per-core thermal stress and residency: the
  time-weighted mean, the peak (and when/where it occurred), the time spent
  above a limit and the degree-seconds integral above it;
- :func:`dtm_stats` — DTM duty cycle per core and chip-wide, engage/release
  counts and the thrash rate (throttle transitions per second);
- :func:`migration_stats` — migration counts/rates and penalties, broken
  down by destination AMD ring when a ``ring_of`` mapping is supplied;
- :func:`rotation_stats` — rotation-period adherence: how exactly the
  recorded epoch boundaries track the scheduler's declared ``tau``;
- :func:`compare_peak_to_bound` — the paper's core claim made checkable:
  the observed peak versus the analytic ``T_peak`` of Algorithm 1
  (:class:`repro.core.peak_temperature.PeakTemperatureCalculator`), with
  the per-epoch power pattern reconstructed from the trace itself;
- :func:`analyze` — all of the above bundled into one
  :class:`RunAnalysis`, flattened for regression diffing by
  :func:`analysis_to_flat`.

The analytic-bound comparison is *sound by construction*: the rotation
pattern handed to Algorithm 1 takes, per epoch slot, the **elementwise
maximum** power over every complete epoch of that slot, so (by monotonicity
of the RC thermal system in its power input) the converged cycle of that
pattern upper-bounds what the simulator could have observed from the cooler
warm start.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .trace import TraceRecorder

#: Floating-point slack for time comparisons [s].
_TIME_EPS = 1e-12


# -- thermal stress / residency ------------------------------------------------


@dataclass(frozen=True)
class CoreThermalStats:
    """Thermal history of one core, reduced to stress statistics."""

    core: int
    #: time-weighted mean temperature [degC].
    mean_c: float
    peak_c: float
    #: start time of the interval in which the peak was reached.
    peak_time_s: float
    #: residency: total time spent above the limit [s].
    time_above_limit_s: float
    #: thermal stress: integral of ``max(T - limit, 0) dt`` [degC * s].
    stress_cs: float


@dataclass(frozen=True)
class ThermalSummary:
    """Chip-wide thermal digest plus the per-core statistics."""

    duration_s: float
    limit_c: float
    peak_c: float
    peak_core: int
    peak_time_s: float
    cores: Tuple[CoreThermalStats, ...]


def thermal_stats(trace: TraceRecorder, limit_c: float) -> ThermalSummary:
    """Per-core thermal stress/residency statistics of a trace.

    Each interval's end-of-interval temperature is taken to hold for the
    whole interval (the trace's native piecewise-constant view).
    """
    intervals = trace.intervals()
    if not intervals:
        raise ValueError("trace has no interval records to analyze")
    n_cores = len(intervals[0].temps_c)
    temps = np.array([r.temps_c for r in intervals])  # (K, n_cores)
    dts = np.array([r.dt_s for r in intervals])  # (K,)
    duration = float(dts.sum())
    mean = temps.T @ dts / duration if duration > 0 else temps.mean(axis=0)
    over = np.maximum(temps - limit_c, 0.0)
    stress = over.T @ dts  # (n_cores,)
    residency = (over > 0).T @ dts
    peak_idx = temps.argmax(axis=0)  # per core
    cores = tuple(
        CoreThermalStats(
            core=c,
            mean_c=float(mean[c]),
            peak_c=float(temps[peak_idx[c], c]),
            peak_time_s=float(intervals[peak_idx[c]].time_s),
            time_above_limit_s=float(residency[c]),
            stress_cs=float(stress[c]),
        )
        for c in range(n_cores)
    )
    flat_peak = int(np.argmax(temps))
    peak_interval, peak_core = divmod(flat_peak, n_cores)
    return ThermalSummary(
        duration_s=duration,
        limit_c=float(limit_c),
        peak_c=float(temps[peak_interval, peak_core]),
        peak_core=peak_core,
        peak_time_s=float(intervals[peak_interval].time_s),
        cores=cores,
    )


# -- DTM duty cycle / thrash ---------------------------------------------------


@dataclass(frozen=True)
class DtmStats:
    """How much the hardware DTM intervened, and how nervously."""

    #: fraction of core-time spent throttled, chip-wide.
    duty_cycle: float
    #: per-core throttled-time fraction.
    per_core_duty: Tuple[float, ...]
    #: total throttled core-time [s].
    throttled_core_time_s: float
    engaged: int
    released: int
    #: throttle transitions (engage + release) per simulated second.
    thrash_rate_hz: float


def dtm_stats(trace: TraceRecorder) -> DtmStats:
    """DTM duty cycle (from interval records) and thrash rate (from events)."""
    intervals = trace.intervals()
    if not intervals:
        raise ValueError("trace has no interval records to analyze")
    n_cores = len(intervals[0].temps_c)
    duration = sum(r.dt_s for r in intervals)
    per_core = np.zeros(n_cores)
    for record in intervals:
        for core in record.dtm_throttled:
            per_core[core] += record.dt_s
    engaged = len(trace.events("DtmEngaged"))
    released = len(trace.events("DtmReleased"))
    total = float(per_core.sum())
    return DtmStats(
        duty_cycle=total / (duration * n_cores) if duration > 0 else 0.0,
        per_core_duty=tuple(
            float(t / duration) if duration > 0 else 0.0 for t in per_core
        ),
        throttled_core_time_s=total,
        engaged=engaged,
        released=released,
        thrash_rate_hz=(engaged + released) / duration if duration > 0 else 0.0,
    )


# -- migrations ---------------------------------------------------------------


@dataclass(frozen=True)
class MigrationStats:
    """Migration volume, rate and cost (optionally per destination ring)."""

    count: int
    rate_hz: float
    total_penalty_s: float
    mean_penalty_s: float
    #: destination AMD ring -> migration count (empty without ``ring_of``).
    per_dst_ring: Dict[int, int]
    #: destination AMD ring -> migrations per simulated second.
    per_dst_ring_rate_hz: Dict[int, float]


def migration_stats(
    trace: TraceRecorder, ring_of: Optional[Callable[[int], int]] = None
) -> MigrationStats:
    """Migration statistics from ``ThreadMigrated`` event records.

    ``ring_of`` maps a core id to its AMD ring
    (e.g. :meth:`repro.arch.amd.AmdRings.ring_of`); without it the
    per-ring breakdown stays empty.
    """
    moves = trace.events("ThreadMigrated")
    duration = sum(r.dt_s for r in trace.intervals())
    penalties = [float(m.data.get("penalty_s", 0.0)) for m in moves]
    per_ring: Dict[int, int] = {}
    if ring_of is not None:
        for move in moves:
            ring = ring_of(int(move.data["dst_core"]))
            per_ring[ring] = per_ring.get(ring, 0) + 1
    return MigrationStats(
        count=len(moves),
        rate_hz=len(moves) / duration if duration > 0 else 0.0,
        total_penalty_s=float(sum(penalties)),
        mean_penalty_s=float(sum(penalties) / len(penalties)) if moves else 0.0,
        per_dst_ring=dict(sorted(per_ring.items())),
        per_dst_ring_rate_hz={
            ring: count / duration if duration > 0 else 0.0
            for ring, count in sorted(per_ring.items())
        },
    )


# -- rotation-period adherence -------------------------------------------------


@dataclass(frozen=True)
class RotationStats:
    """How faithfully the engine executed the scheduler's declared ``tau``."""

    #: number of recorded epoch boundaries.
    epochs: int
    #: distinct declared taus, in order of first appearance.
    tau_values_s: Tuple[float, ...]
    #: tau declared at the last boundary.
    final_tau_s: float
    #: worst relative deviation of a boundary gap from its declared tau.
    max_deviation: float
    #: longest gap between consecutive boundaries [s].
    max_gap_s: float
    #: time between the last boundary and the end of the trace [s].
    trailing_gap_s: float


def rotation_stats(trace: TraceRecorder) -> Optional[RotationStats]:
    """Rotation-period adherence, or ``None`` when nothing rotated."""
    epochs = trace.epochs()
    if not epochs:
        return None
    taus: List[float] = []
    for record in epochs:
        if not any(abs(record.tau_s - t) < _TIME_EPS for t in taus):
            taus.append(record.tau_s)
    max_dev = 0.0
    max_gap = 0.0
    for prev, cur in zip(epochs, epochs[1:]):
        gap = cur.time_s - prev.time_s
        max_gap = max(max_gap, gap)
        # a gap is only comparable to tau while tau was constant and the
        # epoch counter advanced by exactly one (counter resets on re-tuning)
        if (
            abs(cur.tau_s - prev.tau_s) < _TIME_EPS
            and cur.epoch == prev.epoch + 1
        ):
            max_dev = max(max_dev, abs(gap - prev.tau_s) / prev.tau_s)
    intervals = trace.intervals()
    end = (
        intervals[-1].time_s + intervals[-1].dt_s if intervals else epochs[-1].time_s
    )
    return RotationStats(
        epochs=len(epochs),
        tau_values_s=tuple(taus),
        final_tau_s=epochs[-1].tau_s,
        max_deviation=max_dev,
        max_gap_s=max_gap,
        trailing_gap_s=max(0.0, end - epochs[-1].time_s),
    )


# -- observed peak vs analytic T_peak ------------------------------------------


@dataclass(frozen=True)
class BoundComparison:
    """Observed peak versus the analytic ``T_peak`` bound of Algorithm 1."""

    observed_peak_c: float
    analytic_peak_c: float
    #: ``analytic - observed``: positive means the run stayed under the bound.
    margin_c: float
    tau_s: float
    #: rotation period length in epochs the pattern was built over.
    delta: int
    #: complete epochs that contributed power samples to the pattern.
    epochs_used: int
    exceeded: bool


def _epoch_power_slots(
    trace: TraceRecorder,
) -> Tuple[List[np.ndarray], List[Tuple[int, ...]], float]:
    """Per-complete-epoch elementwise-max power vectors, placement
    signatures and the (constant) final tau.

    Only epochs declaring the final tau are used; an epoch counts as
    complete when its assigned intervals cover at least 99% of tau.
    """
    epochs = trace.epochs()
    intervals = trace.intervals()
    if not epochs or not intervals:
        return [], [], 0.0
    tau = epochs[-1].tau_s
    bounds = [e for e in epochs if abs(e.tau_s - tau) < _TIME_EPS]
    starts = [e.time_s for e in bounds]
    powers: List[Optional[np.ndarray]] = [None] * len(bounds)
    coverage = [0.0] * len(bounds)
    signatures: List[Tuple] = [()] * len(bounds)
    for record in intervals:
        idx = bisect_right(starts, record.time_s + _TIME_EPS) - 1
        if idx < 0 or record.time_s >= starts[idx] + tau - _TIME_EPS:
            continue  # interval belongs to no (final-tau) epoch
        vec = np.asarray(record.power_w, dtype=float)
        if powers[idx] is None:
            powers[idx] = vec.copy()
            signatures[idx] = tuple(sorted(record.placements.items()))
        else:
            np.maximum(powers[idx], vec, out=powers[idx])
        coverage[idx] += record.dt_s
    complete = [
        (powers[i], signatures[i])
        for i in range(len(bounds))
        if powers[i] is not None and coverage[i] >= 0.99 * tau
    ]
    return (
        [p for p, _ in complete],
        [s for _, s in complete],
        tau,
    )


def infer_rotation_period(trace: TraceRecorder) -> Optional[int]:
    """Smallest period (in epochs) of the trailing placement pattern.

    Looks for the smallest ``d`` such that the last two windows of ``d``
    epochs show identical placement signatures; ``None`` when the trace
    never exhibits two consecutive identical periods.
    """
    _, signatures, _ = _epoch_power_slots(trace)
    for d in range(1, len(signatures) // 2 + 1):
        tail = signatures[-2 * d :]
        if tail[:d] == tail[d:]:
            return d
    return None


def compare_peak_to_bound(
    trace: TraceRecorder,
    peak_fn: Callable[[np.ndarray, float], float],
    delta: Optional[int] = None,
    tolerance_c: float = 0.0,
) -> Optional[BoundComparison]:
    """Observed whole-run peak versus the analytic rotation ``T_peak``.

    ``peak_fn(power_seq, tau_s)`` evaluates Algorithm 1 — typically
    ``lambda seq, tau: calculator.peak(seq, tau, within_epoch_samples=4)``
    with a :class:`repro.core.peak_temperature.PeakTemperatureCalculator`
    built for the run's platform.  The per-epoch power pattern is
    reconstructed from the trace: epoch slot ``j`` receives the elementwise
    maximum power over every complete epoch congruent to ``j`` modulo the
    rotation period ``delta`` (inferred from the placement pattern when not
    given).  When the placements never repeat exactly (adaptive schedulers
    re-tune the rotation), the comparison falls back to the **whole-run
    power envelope** as a constant ``delta = 1`` pattern — by monotonicity
    of the RC system still a valid upper bound, just a looser one.
    Returns ``None`` when the trace records no epochs at all.
    """
    powers, _, tau = _epoch_power_slots(trace)
    intervals = trace.intervals()
    if tau <= 0 or not intervals:
        return None
    if delta is None:
        delta = infer_rotation_period(trace)
    if delta is None:
        # conservative fallback: hold the elementwise-max power of the
        # whole run on every core forever
        seq = np.max([r.power_w for r in intervals], axis=0)[None, :]
        delta = 1
    else:
        if delta < 1 or not powers or len(powers) < delta:
            return None
        n_cores = powers[0].shape[0]
        seq = np.zeros((delta, n_cores))
        # align slots so the last complete epoch lands on slot delta - 1
        offset = (delta - 1) - ((len(powers) - 1) % delta)
        for index, power in enumerate(powers):
            seq[(index + offset) % delta] = np.maximum(
                seq[(index + offset) % delta], power
            )
    analytic = float(peak_fn(seq, tau))
    observed = max(max(r.temps_c) for r in trace.intervals())
    return BoundComparison(
        observed_peak_c=observed,
        analytic_peak_c=analytic,
        margin_c=analytic - observed,
        tau_s=tau,
        delta=delta,
        epochs_used=len(powers),
        exceeded=observed > analytic + tolerance_c,
    )


# -- the bundle ----------------------------------------------------------------


@dataclass(frozen=True)
class RunAnalysis:
    """Every derived statistic of one run, in one place."""

    thermal: ThermalSummary
    dtm: DtmStats
    migration: MigrationStats
    rotation: Optional[RotationStats]
    bound: Optional[BoundComparison]


def analyze(
    trace: TraceRecorder,
    limit_c: float = 70.0,
    ring_of: Optional[Callable[[int], int]] = None,
    peak_fn: Optional[Callable[[np.ndarray, float], float]] = None,
    delta: Optional[int] = None,
    bound_tolerance_c: float = 0.0,
) -> RunAnalysis:
    """Full derived-statistics bundle for one trace.

    ``limit_c`` is the thermal limit for stress/residency (typically
    ``SystemConfig.thermal.dtm_threshold_c``); ``ring_of`` and ``peak_fn``
    unlock the per-ring migration breakdown and the analytic-bound
    comparison respectively (both need platform knowledge the trace alone
    does not carry).
    """
    return RunAnalysis(
        thermal=thermal_stats(trace, limit_c),
        dtm=dtm_stats(trace),
        migration=migration_stats(trace, ring_of),
        rotation=rotation_stats(trace),
        bound=(
            compare_peak_to_bound(trace, peak_fn, delta, bound_tolerance_c)
            if peak_fn is not None
            else None
        ),
    )


def analysis_to_flat(analysis: RunAnalysis) -> Dict[str, float]:
    """Flatten a :class:`RunAnalysis` to a sorted ``name -> float`` dict.

    The same shape as a metrics snapshot, so the ``repro.obs diff``
    machinery compares analyses and snapshots uniformly.
    """
    flat: Dict[str, float] = {
        "thermal.duration_s": analysis.thermal.duration_s,
        "thermal.limit_c": analysis.thermal.limit_c,
        "thermal.peak_c": analysis.thermal.peak_c,
        "thermal.peak_core": float(analysis.thermal.peak_core),
        "thermal.peak_time_s": analysis.thermal.peak_time_s,
        "dtm.duty_cycle": analysis.dtm.duty_cycle,
        "dtm.throttled_core_time_s": analysis.dtm.throttled_core_time_s,
        "dtm.engaged": float(analysis.dtm.engaged),
        "dtm.released": float(analysis.dtm.released),
        "dtm.thrash_rate_hz": analysis.dtm.thrash_rate_hz,
        "migration.count": float(analysis.migration.count),
        "migration.rate_hz": analysis.migration.rate_hz,
        "migration.total_penalty_s": analysis.migration.total_penalty_s,
        "migration.mean_penalty_s": analysis.migration.mean_penalty_s,
    }
    for stats in analysis.thermal.cores:
        prefix = f"thermal.core.{stats.core}"
        flat[f"{prefix}.mean_c"] = stats.mean_c
        flat[f"{prefix}.peak_c"] = stats.peak_c
        flat[f"{prefix}.time_above_limit_s"] = stats.time_above_limit_s
        flat[f"{prefix}.stress_cs"] = stats.stress_cs
    for ring, count in analysis.migration.per_dst_ring.items():
        flat[f"migration.to_ring.{ring}"] = float(count)
    if analysis.rotation is not None:
        flat["rotation.epochs"] = float(analysis.rotation.epochs)
        flat["rotation.final_tau_s"] = analysis.rotation.final_tau_s
        flat["rotation.max_deviation"] = analysis.rotation.max_deviation
        flat["rotation.max_gap_s"] = analysis.rotation.max_gap_s
        flat["rotation.trailing_gap_s"] = analysis.rotation.trailing_gap_s
    if analysis.bound is not None:
        flat["bound.observed_peak_c"] = analysis.bound.observed_peak_c
        flat["bound.analytic_peak_c"] = analysis.bound.analytic_peak_c
        flat["bound.margin_c"] = analysis.bound.margin_c
        flat["bound.tau_s"] = analysis.bound.tau_s
        flat["bound.delta"] = float(analysis.bound.delta)
        flat["bound.exceeded"] = float(analysis.bound.exceeded)
    return dict(sorted(flat.items()))

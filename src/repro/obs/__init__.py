"""Observability: structured tracing, metrics export, profiling hooks.

Zero-dependency instrumentation threaded through the interval simulator's
hot loop (see ``docs/observability.md``):

- :class:`TraceRecorder` — typed per-interval records (placement map,
  power/temperature maps, DTM state), rotation-epoch boundaries and all
  structured simulation events, with lossless JSONL export/reload;
- :class:`MetricsRegistry` — named counters, gauges and histograms
  (migrations per ring, thermal-solver cache hit rates, scheduler decision
  latency, ...), snapshotted into
  :class:`~repro.sim.metrics.SimulationResult` and exportable to CSV/JSON;
- :class:`PhaseProfiler` — wall-clock timers around engine phases, off by
  default and free when disabled;
- :class:`Observer` — the bundle of the three the engine threads through.

Enable via configuration (``config.obs``) or pass an observer explicitly::

    from repro import config
    from repro.obs import Observer
    from repro.sim import IntervalSimulator

    cfg = config.motivational().with_observability(trace=True, metrics=True)
    sim = IntervalSimulator(cfg, scheduler, tasks)
    result = sim.run()
    sim.observer.trace.write_jsonl("run.jsonl")
    print(result.metrics_snapshot)
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import Observer
from .profiling import PhaseProfiler, PhaseStat
from .trace import (
    EpochRecord,
    EventRecord,
    IntervalRecord,
    TraceRecord,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "EpochRecord",
    "EventRecord",
    "Gauge",
    "Histogram",
    "IntervalRecord",
    "MetricsRegistry",
    "Observer",
    "PhaseProfiler",
    "PhaseStat",
    "TraceRecord",
    "TraceRecorder",
]

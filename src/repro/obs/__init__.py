"""Observability: tracing, metrics, profiling — and the analysis layer.

Zero-dependency instrumentation threaded through the interval simulator's
hot loop, plus the analytics that turn its artifacts into insight (see
``docs/observability.md``):

- :class:`TraceRecorder` — typed per-interval records (placement map,
  power/temperature maps, DTM state), rotation-epoch boundaries and all
  structured simulation events, with lossless JSONL export/reload;
- :class:`JsonlTraceSink` — the streaming variant: records append to a
  JSONL file as they happen, so long runs never buffer the trace in memory;
- :class:`MetricsRegistry` — named counters, gauges and histograms
  (migrations per ring, thermal-solver cache hit rates, scheduler decision
  latency, ...), snapshotted into
  :class:`~repro.sim.metrics.SimulationResult` and exportable to CSV/JSON;
- :class:`PhaseProfiler` — wall-clock timers around engine phases, off by
  default and free when disabled;
- :class:`Observer` — the bundle of the three the engine threads through;
- :mod:`repro.obs.analyze` — per-run derived statistics (thermal stress,
  DTM duty cycle, migration rates, rotation adherence, observed peak vs the
  analytic ``T_peak`` of Algorithm 1), bundled as :class:`RunAnalysis`;
- :mod:`repro.obs.detect` — a detector registry producing structured
  :class:`Violation` records, online or offline;
- :mod:`repro.obs.export` — OpenMetrics textfile rendering (including
  histogram quantile/bucket exposition) and self-contained single-file
  HTML reports (run report and trace waterfall);
- :class:`SpanTracer` — off-by-default request tracing for the serve
  stack: trace/span/parent ids, monotonic durations, bounded ring buffer,
  optional JSONL sink (:mod:`repro.obs.spans`);
- :class:`SloTracker` — per-tenant latency error budgets and burn rates
  (:mod:`repro.obs.slo`), with matching detectors
  (``slo-latency-violation``, ``span-orphan``);
- ``python -m repro.obs`` — the CLI over saved artifacts: ``summarize``,
  ``check``, ``diff``, ``export``, ``spans``.

Enable via configuration (``config.obs``) or pass an observer explicitly::

    from repro import config
    from repro.obs import Observer
    from repro.sim import IntervalSimulator

    cfg = config.motivational().with_observability(trace=True, metrics=True)
    sim = IntervalSimulator(cfg, scheduler, tasks)
    result = sim.run()
    sim.observer.trace.write_jsonl("run.jsonl")
    print(result.metrics_snapshot)
"""

from .analyze import (
    BoundComparison,
    CoreThermalStats,
    DtmStats,
    MigrationStats,
    RotationStats,
    RunAnalysis,
    ThermalSummary,
    analysis_to_flat,
    analyze,
    compare_peak_to_bound,
    dtm_stats,
    infer_rotation_period,
    migration_stats,
    rotation_stats,
    thermal_stats,
)
from .detect import (
    BoundDetector,
    Detector,
    DtmThrashDetector,
    PowerMapDetector,
    QosDeadlineViolationDetector,
    RotationStallDetector,
    SloLatencyViolationDetector,
    SpanOrphanDetector,
    ThresholdDetector,
    UnsafeDegradationDetector,
    Violation,
    default_detectors,
    event_callback,
    run_detectors,
)
from .export import (
    histogram_exposition,
    html_report,
    openmetrics_name,
    parse_openmetrics,
    to_openmetrics,
    trace_waterfall_html,
    write_html_report,
    write_openmetrics,
    write_trace_waterfall,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observer import Observer
from .profiling import PhaseProfiler, PhaseStat
from .sink import JsonlTraceSink
from .slo import SloTarget, SloTracker
from .spans import (
    SpanRecord,
    SpanTracer,
    read_spans_jsonl,
    span_to_json_line,
    spans_from_jsonl,
    spans_to_jsonl,
)
from .trace import (
    EpochRecord,
    EventRecord,
    IntervalRecord,
    TraceRecord,
    TraceRecorder,
    event_to_record,
    record_to_json_line,
)

__all__ = [
    "BoundComparison",
    "BoundDetector",
    "CoreThermalStats",
    "Counter",
    "Detector",
    "DtmStats",
    "DtmThrashDetector",
    "EpochRecord",
    "EventRecord",
    "Gauge",
    "Histogram",
    "IntervalRecord",
    "JsonlTraceSink",
    "MetricsRegistry",
    "MigrationStats",
    "Observer",
    "PhaseProfiler",
    "PhaseStat",
    "PowerMapDetector",
    "QosDeadlineViolationDetector",
    "RotationStallDetector",
    "RotationStats",
    "RunAnalysis",
    "SloLatencyViolationDetector",
    "SloTarget",
    "SloTracker",
    "SpanOrphanDetector",
    "SpanRecord",
    "SpanTracer",
    "ThermalSummary",
    "ThresholdDetector",
    "TraceRecord",
    "TraceRecorder",
    "UnsafeDegradationDetector",
    "Violation",
    "analysis_to_flat",
    "analyze",
    "compare_peak_to_bound",
    "default_detectors",
    "dtm_stats",
    "event_callback",
    "event_to_record",
    "histogram_exposition",
    "html_report",
    "infer_rotation_period",
    "migration_stats",
    "openmetrics_name",
    "parse_openmetrics",
    "read_spans_jsonl",
    "record_to_json_line",
    "rotation_stats",
    "run_detectors",
    "span_to_json_line",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "thermal_stats",
    "to_openmetrics",
    "trace_waterfall_html",
    "write_html_report",
    "write_openmetrics",
    "write_trace_waterfall",
]

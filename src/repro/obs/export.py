"""Run exporters: OpenMetrics text format and a self-contained HTML report.

Two render targets for observability artifacts:

- :func:`to_openmetrics` — any flat metrics snapshot (a
  ``name -> float`` dict, e.g. ``MetricsRegistry.snapshot()`` or
  ``SimulationResult.metrics_snapshot``) as a Prometheus/OpenMetrics
  textfile, suitable for the node-exporter textfile collector or a
  ``promtool``-style scrape.  :func:`parse_openmetrics` is the matching
  strict line-format parser (used by the test suite to validate output);
- :func:`html_report` — one run as a single self-contained HTML file: no
  external scripts, stylesheets or images, just inline SVG temperature
  timelines per core, the per-core thermal-stress table, the
  ring-migration table and the violation list;
- :func:`histogram_exposition` — flattens a
  :class:`~repro.obs.metrics.Histogram` into label-free quantile
  (``name.p50``) and cumulative bucket (``name.bucket.le_2em03``)
  samples that ride the same :func:`to_openmetrics` path — the strict
  ``name value`` line format stays label-free by design, so quantiles
  and buckets are encoded in the metric name;
- :func:`trace_waterfall_html` — spans from
  :class:`~repro.obs.spans.SpanTracer` as a self-contained HTML trace
  waterfall (inline SVG, one lane per span, grouped by trace), in the
  same single-file style as :func:`html_report`.
"""

from __future__ import annotations

import html as _html
import math
import re
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .analyze import RunAnalysis
from .detect import Violation
from .metrics import Histogram
from .spans import SpanRecord
from .trace import TraceRecorder

PathLike = Union[str, Path]

#: Characters legal in an OpenMetrics metric name (after the first char).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: One sample line: ``name value`` (we emit no labels or timestamps).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<value>\S+)$"
)


def openmetrics_name(metric: str, prefix: str = "repro") -> str:
    """Sanitize a dotted metric name into an OpenMetrics-legal one.

    ``engine.migrations.to_ring.2`` becomes
    ``repro_engine_migrations_to_ring_2``: dots and any other illegal
    characters map to underscores, and a digit after the prefix is fine
    because the prefix guarantees a legal first character.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", metric)
    name = f"{prefix}_{sanitized}" if prefix else sanitized
    if not _NAME_RE.match(name):
        raise ValueError(f"cannot sanitize metric name {metric!r}")
    return name


def _format_value(value: float) -> str:
    """A float in OpenMetrics sample syntax (inf/nan spelled out)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_openmetrics(
    snapshot: Mapping[str, float], prefix: str = "repro"
) -> str:
    """Render a flat metrics snapshot as an OpenMetrics text exposition.

    Every metric is exposed as an untyped gauge with a ``# HELP`` line
    naming its original dotted form; the exposition ends with the
    mandatory ``# EOF`` terminator.  Two distinct metric names that
    sanitize to the same OpenMetrics name raise :class:`ValueError`
    instead of silently clobbering each other.
    """
    lines: List[str] = []
    seen: Dict[str, str] = {}
    for metric in sorted(snapshot):
        name = openmetrics_name(metric, prefix)
        if name in seen:
            raise ValueError(
                f"metric name collision: {metric!r} and {seen[name]!r} "
                f"both sanitize to {name!r}"
            )
        seen[name] = metric
        lines.append(f"# HELP {name} {metric}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(float(snapshot[metric]))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> Dict[str, float]:
    """Strictly parse a :func:`to_openmetrics` exposition back to a dict.

    Validates the line format: every non-comment line must be
    ``name value`` with a legal metric name and a parseable float, and the
    exposition must end with ``# EOF``.  Raises :class:`ValueError` on any
    deviation — this is the validator the tests drive.
    """
    values: Dict[str, float] = {}
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition does not end with '# EOF'")
    for line_no, line in enumerate(lines[:-1], start=1):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {line_no}: unexpected comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample {line!r}")
        name = match.group("name")
        if name in values:
            raise ValueError(f"line {line_no}: duplicate metric {name!r}")
        try:
            values[name] = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {line_no}: bad value in {line!r}") from exc
    return values


def write_openmetrics(
    snapshot: Mapping[str, float], path: PathLike, prefix: str = "repro"
) -> None:
    """Write an OpenMetrics textfile for ``snapshot`` to ``path``."""
    Path(path).write_text(to_openmetrics(snapshot, prefix))


# -- histogram quantile/bucket exposition --------------------------------------

#: Default quantiles exposed for every histogram.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def quantile_label(q: float) -> str:
    """The flat-name label of one quantile: ``0.99`` -> ``p99``."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    return ("p%g" % (q * 100.0)).replace(".", "_")


def bucket_label(bound: float) -> str:
    """A short, unique, name-legal label for one bucket bound.

    ``0.002`` -> ``2em03``, ``10.0`` -> ``1ep01`` (``m``/``p`` spell the
    exponent sign, since ``-``/``+`` would sanitize ambiguously to ``_``).
    """
    if math.isinf(bound):
        return "inf"
    return f"{bound:.0e}".replace("-", "m").replace("+", "p")


def histogram_exposition(
    name: str,
    histogram: Histogram,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> Dict[str, float]:
    """Flatten one histogram into quantile and cumulative-bucket samples.

    The output merges into any snapshot headed for :func:`to_openmetrics`:
    ``<name>.p50``/``.p95``/``.p99`` (via
    :meth:`~repro.obs.metrics.Histogram.quantile`) plus the cumulative
    log-bucket counts ``<name>.bucket.le_<label>`` (``le_2em03`` is
    "<= 2 ms") and the terminal
    ``<name>.bucket.le_inf`` (== count).  Everything is encoded in the
    metric *name* — the exposition (and its strict parser,
    :func:`parse_openmetrics`) is label-free, which is what lets the
    load generator round-trip ``/metrics`` without an OpenMetrics
    label grammar.
    """
    flat: Dict[str, float] = {}
    for q in quantiles:
        flat[f"{name}.{quantile_label(q)}"] = histogram.quantile(q)
    cumulative = 0
    for bound, bucket_count in zip(
        tuple(histogram.bounds) + (float("inf"),), histogram.bucket_counts
    ):
        cumulative += bucket_count
        flat[f"{name}.bucket.le_{bucket_label(bound)}"] = float(cumulative)
    return flat


# -- HTML report ---------------------------------------------------------------

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 64em;
       color: #1a1a2e; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #c8c8d0; padding: 0.3em 0.8em; text-align: right; }
th { background: #eef0f4; }
td:first-child, th:first-child { text-align: left; }
.violation-critical { color: #b00020; font-weight: 600; }
.violation-warning { color: #a05a00; font-weight: 600; }
.ok { color: #1a7a3c; font-weight: 600; }
svg { background: #fafbfc; border: 1px solid #c8c8d0; }
figcaption { font-size: 0.85em; color: #555; }
"""

#: Cycled polyline colors for the per-core timelines.
_PALETTE = (
    "#4363d8", "#e6194b", "#3cb44b", "#f58231", "#911eb4",
    "#4699c9", "#808000", "#f032e6", "#9a6324", "#2f4f4f",
)


def _svg_timeline(
    trace: TraceRecorder,
    limit_c: Optional[float],
    bound_c: Optional[float],
    width: int = 860,
    height: int = 300,
) -> str:
    """Inline SVG: one temperature polyline per core over simulated time."""
    intervals = trace.intervals()
    if not intervals:
        return "<p>(no interval records)</p>"
    n_cores = len(intervals[0].temps_c)
    times = [r.time_s + r.dt_s for r in intervals]
    t_min, t_max = intervals[0].time_s, times[-1]
    lows = [min(r.temps_c) for r in intervals]
    highs = [max(r.temps_c) for r in intervals]
    y_min = min(lows)
    y_max = max(highs)
    for level in (limit_c, bound_c):
        if level is not None:
            y_min = min(y_min, level)
            y_max = max(y_max, level)
    y_pad = max(0.5, 0.05 * (y_max - y_min))
    y_min -= y_pad
    y_max += y_pad
    margin_l, margin_b, margin_t = 54, 30, 10
    plot_w = width - margin_l - 10
    plot_h = height - margin_b - margin_t

    def x_of(t: float) -> float:
        span = (t_max - t_min) or 1.0
        return margin_l + (t - t_min) / span * plot_w

    def y_of(temp: float) -> float:
        span = (y_max - y_min) or 1.0
        return margin_t + (y_max - temp) / span * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="per-core temperature timelines">'
    ]
    # axes and gridlines
    n_ticks = 5
    for i in range(n_ticks + 1):
        temp = y_min + (y_max - y_min) * i / n_ticks
        y = y_of(temp)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width - 10}" '
            f'y2="{y:.1f}" stroke="#e0e2e8" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" font-size="11" '
            f'text-anchor="end">{temp:.1f}</text>'
        )
    for i in range(n_ticks + 1):
        t = t_min + (t_max - t_min) * i / n_ticks
        x = x_of(t)
        parts.append(
            f'<text x="{x:.1f}" y="{height - 8}" font-size="11" '
            f'text-anchor="middle">{t * 1e3:.1f} ms</text>'
        )
    # reference levels
    for level, color, label in (
        (limit_c, "#b00020", "T_DTM"),
        (bound_c, "#6a1fb0", "analytic T_peak"),
    ):
        if level is None:
            continue
        y = y_of(level)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width - 10}" '
            f'y2="{y:.1f}" stroke="{color}" stroke-width="1.5" '
            f'stroke-dasharray="6 4"/>'
        )
        parts.append(
            f'<text x="{width - 14}" y="{y - 4:.1f}" font-size="11" '
            f'text-anchor="end" fill="{color}">{label} = {level:.1f} C</text>'
        )
    # per-core polylines
    for core in range(n_cores):
        points = " ".join(
            f"{x_of(t):.1f},{y_of(r.temps_c[core]):.1f}"
            for t, r in zip(times, intervals)
        )
        color = _PALETTE[core % len(_PALETTE)]
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.2"><title>core {core}</title></polyline>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def html_report(
    trace: TraceRecorder,
    analysis: Optional[RunAnalysis] = None,
    violations: Sequence[Violation] = (),
    title: str = "Simulation run report",
) -> str:
    """One run as a single self-contained HTML document (string).

    Sections: the per-core temperature timeline (inline SVG, with the DTM
    threshold and — when the analysis carries one — the analytic ``T_peak``
    bound drawn as reference levels), per-core thermal stress, the
    ring-migration table and the violation list.
    """
    limit_c = analysis.thermal.limit_c if analysis is not None else None
    bound_c = (
        analysis.bound.analytic_peak_c
        if analysis is not None and analysis.bound is not None
        else None
    )
    sections: List[str] = [
        f"<h1>{_html.escape(title)}</h1>",
        "<h2>Temperature timeline</h2>",
        "<figure>",
        _svg_timeline(trace, limit_c, bound_c),
        "<figcaption>One polyline per core; end-of-interval temperatures."
        "</figcaption>",
        "</figure>",
    ]
    if analysis is not None:
        thermal = analysis.thermal
        sections.append("<h2>Run summary</h2>")
        summary_rows = [
            ("simulated time", f"{thermal.duration_s * 1e3:.2f} ms"),
            (
                "observed peak",
                f"{thermal.peak_c:.2f} C on core {thermal.peak_core} "
                f"at {thermal.peak_time_s * 1e3:.2f} ms",
            ),
            ("DTM duty cycle", f"{analysis.dtm.duty_cycle:.2%}"),
            (
                "DTM thrash rate",
                f"{analysis.dtm.thrash_rate_hz:.1f} transitions/s",
            ),
            ("migrations", f"{analysis.migration.count}"),
            (
                "migration penalty",
                f"{analysis.migration.total_penalty_s * 1e3:.2f} ms",
            ),
        ]
        if analysis.rotation is not None:
            summary_rows.append(
                (
                    "rotation",
                    f"{analysis.rotation.epochs} epoch boundaries, final "
                    f"tau {analysis.rotation.final_tau_s * 1e3:.2f} ms, "
                    f"max deviation {analysis.rotation.max_deviation:.1%}",
                )
            )
        if analysis.bound is not None:
            bound = analysis.bound
            verdict = (
                "EXCEEDED" if bound.exceeded else "held"
            )
            summary_rows.append(
                (
                    "analytic T_peak bound",
                    f"{bound.analytic_peak_c:.2f} C ({verdict}; margin "
                    f"{bound.margin_c:+.2f} C, delta={bound.delta}, "
                    f"tau {bound.tau_s * 1e3:.2f} ms)",
                )
            )
        sections.append(_table(("quantity", "value"), summary_rows))
        sections.append("<h2>Per-core thermal stress</h2>")
        sections.append(
            _table(
                (
                    "core",
                    "mean [C]",
                    "peak [C]",
                    "peak at [ms]",
                    f"time > {thermal.limit_c:.0f} C [ms]",
                    "stress [C*ms]",
                ),
                [
                    (
                        stats.core,
                        f"{stats.mean_c:.2f}",
                        f"{stats.peak_c:.2f}",
                        f"{stats.peak_time_s * 1e3:.2f}",
                        f"{stats.time_above_limit_s * 1e3:.2f}",
                        f"{stats.stress_cs * 1e3:.2f}",
                    )
                    for stats in thermal.cores
                ],
            )
        )
        if analysis.migration.per_dst_ring:
            sections.append("<h2>Migrations by destination AMD ring</h2>")
            sections.append(
                _table(
                    ("ring", "migrations", "rate [1/s]"),
                    [
                        (
                            ring,
                            count,
                            f"{analysis.migration.per_dst_ring_rate_hz[ring]:.1f}",
                        )
                        for ring, count in analysis.migration.per_dst_ring.items()
                    ],
                )
            )
    sections.append("<h2>Violations</h2>")
    if violations:
        sections.append(
            _table(
                ("time [ms]", "detector", "severity", "core", "message"),
                [
                    (
                        f"{v.time_s * 1e3:.3f}",
                        v.detector,
                        v.severity,
                        "-" if v.core is None else v.core,
                        v.message,
                    )
                    for v in violations
                ],
            )
        )
    else:
        sections.append('<p class="ok">No violations detected.</p>')
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(sections)
        + "</body></html>\n"
    )


def write_html_report(
    path: PathLike,
    trace: TraceRecorder,
    analysis: Optional[RunAnalysis] = None,
    violations: Sequence[Violation] = (),
    title: str = "Simulation run report",
) -> None:
    """Write :func:`html_report` output to ``path``."""
    Path(path).write_text(html_report(trace, analysis, violations, title))


# -- trace waterfall -----------------------------------------------------------


def _waterfall_rows(spans: Sequence[SpanRecord]) -> List[Tuple[SpanRecord, int]]:
    """Spans of one trace in parent-first order with their nesting depth.

    Children sort under their parent by start time; spans whose parent is
    missing (evicted from the ring buffer) render as extra roots at depth
    0 — visually flagging the orphan the
    :class:`~repro.obs.detect.SpanOrphanDetector` would report.
    """
    ids = {span.span_id for span in spans}
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_s, s.span_id))
    rows: List[Tuple[SpanRecord, int]] = []

    def _walk(parent: Optional[int], depth: int) -> None:
        for span in children.get(parent, []):
            rows.append((span, depth))
            _walk(span.span_id, depth + 1)

    _walk(None, 0)
    return rows


def _svg_waterfall(
    spans: Sequence[SpanRecord], width: int = 860
) -> str:
    """Inline SVG: one horizontal bar per span, indented by depth."""
    rows = _waterfall_rows(spans)
    if not rows:
        return "<p>(no spans)</p>"
    t0 = min(span.start_s for span, _ in rows)
    t1 = max(span.end_s for span, _ in rows)
    span_names = sorted({span.name for span, _ in rows})
    color_of = {
        name: _PALETTE[index % len(_PALETTE)]
        for index, name in enumerate(span_names)
    }
    row_h, margin_l, margin_t = 22, 10, 8
    label_w = 280
    plot_w = width - margin_l - label_w - 10
    height = margin_t * 2 + row_h * len(rows) + 18

    def x_of(t: float) -> float:
        total = (t1 - t0) or 1.0
        return margin_l + label_w + (t - t0) / total * plot_w

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="trace waterfall">'
    ]
    for index, (span, depth) in enumerate(rows):
        y = margin_t + index * row_h
        x0, x1 = x_of(span.start_s), x_of(span.end_s)
        bar_w = max(x1 - x0, 1.5)
        color = color_of[span.name]
        error = not span.status.startswith("ok")
        stroke = ' stroke="#b00020" stroke-width="1.5"' if error else ""
        label = f"{'&#160;' * 2 * depth}{_html.escape(span.name)}"
        duration_ms = span.duration_s * 1e3
        title = (
            f"{span.name} #{span.span_id} "
            f"({duration_ms:.3f} ms, {span.status})"
        )
        parts.append(
            f'<text x="{margin_l}" y="{y + row_h - 7}" font-size="12">'
            f"{label}</text>"
        )
        parts.append(
            f'<rect x="{x0:.1f}" y="{y + 3}" width="{bar_w:.1f}" '
            f'height="{row_h - 8}" rx="2" fill="{color}" '
            f'fill-opacity="0.8"{stroke}>'
            f"<title>{_html.escape(title)}</title></rect>"
        )
        parts.append(
            f'<text x="{min(x1 + 4, width - 60):.1f}" '
            f'y="{y + row_h - 7}" font-size="10" fill="#555">'
            f"{duration_ms:.2f} ms</text>"
        )
    duration_label = f"trace duration {(t1 - t0) * 1e3:.2f} ms"
    parts.append(
        f'<text x="{margin_l + label_w}" y="{height - 4}" font-size="11" '
        f'fill="#555">{duration_label}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def trace_waterfall_html(
    spans: Sequence[SpanRecord],
    title: str = "Trace waterfall",
    max_traces: int = 20,
) -> str:
    """Spans as a single self-contained HTML trace-waterfall document.

    Sections: a per-span-name summary table (count, total/mean/max
    duration) over *all* spans, then one inline-SVG waterfall per trace —
    slowest traces first, capped at ``max_traces`` (stated in the output
    when the cap truncates).  Same conventions as :func:`html_report`:
    no external assets, one file tells the whole story.
    """
    sections: List[str] = [f"<h1>{_html.escape(title)}</h1>"]
    by_trace: Dict[int, List[SpanRecord]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    totals: Dict[str, List[float]] = {}
    for span in spans:
        totals.setdefault(span.name, []).append(span.duration_s)
    sections.append("<h2>Span summary</h2>")
    if totals:
        sections.append(
            _table(
                ("span", "count", "total [ms]", "mean [ms]", "max [ms]"),
                [
                    (
                        name,
                        len(durations),
                        f"{sum(durations) * 1e3:.2f}",
                        f"{sum(durations) / len(durations) * 1e3:.3f}",
                        f"{max(durations) * 1e3:.3f}",
                    )
                    for name, durations in sorted(
                        totals.items(), key=lambda kv: -sum(kv[1])
                    )
                ],
            )
        )
    else:
        sections.append("<p>(no spans recorded)</p>")
    ordered = sorted(
        by_trace.items(),
        key=lambda kv: -(
            max(s.end_s for s in kv[1]) - min(s.start_s for s in kv[1])
        ),
    )
    shown = ordered[:max_traces]
    sections.append(
        f"<h2>Traces ({len(shown)} of {len(ordered)}, slowest first)</h2>"
    )
    for trace_id, trace_spans in shown:
        duration_ms = (
            max(s.end_s for s in trace_spans)
            - min(s.start_s for s in trace_spans)
        ) * 1e3
        sections.append(
            f"<h3>trace {trace_id} — {len(trace_spans)} spans, "
            f"{duration_ms:.2f} ms</h3>"
        )
        sections.append("<figure>")
        sections.append(_svg_waterfall(trace_spans))
        sections.append("</figure>")
    if len(ordered) > max_traces:
        sections.append(
            f"<p>({len(ordered) - max_traces} faster traces omitted)</p>"
        )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(sections)
        + "</body></html>\n"
    )


def write_trace_waterfall(
    path: PathLike,
    spans: Sequence[SpanRecord],
    title: str = "Trace waterfall",
    max_traces: int = 20,
) -> None:
    """Write :func:`trace_waterfall_html` output to ``path``."""
    Path(path).write_text(trace_waterfall_html(spans, title, max_traces))

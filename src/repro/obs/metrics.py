"""Metrics registry: named counters, gauges and histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments that
the engine, the schedulers and the thermal solver publish into:

- :class:`Counter` — a monotonically increasing count (e.g.
  ``engine.migrations``, ``engine.migrations.to_ring.2``);
- :class:`Gauge` — a last-write-wins value (e.g.
  ``thermal.exp_cache.hits`` copied from
  :meth:`~repro.thermal.matex.ThermalDynamics.cache_stats` at run end);
- :class:`Histogram` — streaming count/sum/min/max of observations (e.g.
  ``scheduler.decision_latency_s``), plus log-bucketed counts
  (1-2-5 decades, :data:`DEFAULT_BUCKET_BOUNDS`) powering
  :meth:`Histogram.quantile` — the p50/p95/p99 estimator shared by the
  serve layer's ``/metrics`` exposition and the load generator.

Instruments measuring *wall-clock* quantities are created with
``timing=True``; :meth:`MetricsRegistry.snapshot` can exclude them so that
two identical simulations produce bit-identical snapshots (the timing
values are real measurements and therefore never reproducible).

The snapshot is a flat, sorted ``name -> value`` dict; histograms expand
into ``name.count`` / ``name.sum`` / ``name.min`` / ``name.max`` /
``name.mean``.  Export to JSON (:meth:`MetricsRegistry.to_json`) and CSV
(:meth:`MetricsRegistry.to_csv`) works on the same flat form.
"""

from __future__ import annotations

import csv
import io as _io
import json
import math
from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Tuple, Union

PathLike = Union[str, Path]

#: Log-spaced bucket upper bounds (1-2-5 per decade) covering 1 µs .. 50 s
#: — the latency range of everything this codebase serves; values above
#: the last bound land in an overflow bucket.  Quantile estimates
#: interpolate within a bucket and are clamped to the exact streaming
#: min/max, so constant data yields exact quantiles.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(-6, 2) for m in (1.0, 2.0, 5.0)
)


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str, timing: bool = False):
        self.name = name
        self.timing = timing
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A last-write-wins value."""

    def __init__(self, name: str, timing: bool = False):
        self.name = name
        self.timing = timing
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """Streaming summary (count/sum/sum-of-squares/min/max) of values,
    with log-bucketed counts for quantile estimation."""

    def __init__(self, name: str, timing: bool = False):
        self.name = name
        self.timing = timing
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds = DEFAULT_BUCKET_BOUNDS
        #: per-bucket counts; index i counts values <= bounds[i], the
        #: final slot is the overflow bucket (> bounds[-1]).
        self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        self.sum_sq += value * value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        """Average of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 when empty).

        Computed from the streaming sum of squares; the variance is clamped
        at zero so floating-point cancellation never yields a NaN.
        """
        if not self.count:
            return 0.0
        variance = self.sum_sq / self.count - self.mean**2
        return math.sqrt(max(0.0, variance))

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Walks the cumulative bucket counts to the bucket holding rank
        ``q * count``, interpolates linearly inside it, and clamps the
        estimate to the exact streaming ``[min, max]`` — so ``p0``/``p100``
        are exact, every estimate is within one bucket's width (a factor
        of at most 2.5 on the 1-2-5 grid) of the true quantile, and a
        constant stream yields exact quantiles.  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if cumulative >= rank:
                low = self.bounds[index - 1] if index > 0 else min(self.min, 0.0)
                high = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.max
                )
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = low + (high - low) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:g})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of named instruments, snapshot-exportable."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, cls, timing: bool) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, timing=timing)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, timing: bool = False) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, timing)

    def gauge(self, name: str, timing: bool = False) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, timing)

    def histogram(self, name: str, timing: bool = False) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram, timing)

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def histograms(self) -> Dict[str, Histogram]:
        """The registered histograms, name-sorted (quantile exposition)."""
        return {
            name: instrument
            for name, instrument in sorted(self._instruments.items())
            if isinstance(instrument, Histogram)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshot and export -------------------------------------------------

    def snapshot(self, exclude_timing: bool = False) -> Dict[str, float]:
        """Flat ``name -> value`` view of every instrument, sorted by name.

        ``exclude_timing=True`` drops wall-clock instruments, leaving only
        values that are deterministic across identical runs.
        """
        flat: Dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if exclude_timing and instrument.timing:
                continue
            if isinstance(instrument, Histogram):
                flat[f"{name}.count"] = float(instrument.count)
                flat[f"{name}.sum"] = instrument.sum
                flat[f"{name}.min"] = instrument.min if instrument.count else 0.0
                flat[f"{name}.max"] = instrument.max if instrument.count else 0.0
                flat[f"{name}.mean"] = instrument.mean
                flat[f"{name}.stddev"] = instrument.stddev
            else:
                flat[name] = instrument.value
        return dict(sorted(flat.items()))

    def to_json(self, exclude_timing: bool = False) -> str:
        """The snapshot as a JSON object string."""
        return json.dumps(self.snapshot(exclude_timing), indent=2, sort_keys=True)

    def to_csv(self, exclude_timing: bool = False) -> str:
        """The snapshot as ``metric,value`` CSV (header included)."""
        buffer = _io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["metric", "value"])
        for name, value in self.snapshot(exclude_timing).items():
            writer.writerow([name, repr(value)])
        return buffer.getvalue()

    def save(self, path: PathLike, exclude_timing: bool = False) -> None:
        """Write the snapshot to ``path`` (format by suffix: .csv or .json).

        Any other suffix raises :class:`ValueError` — a typo'd extension
        must not silently produce a file in an unexpected format.
        """
        path = Path(path)
        if path.suffix == ".csv":
            path.write_text(self.to_csv(exclude_timing))
        elif path.suffix == ".json":
            path.write_text(self.to_json(exclude_timing))
        else:
            raise ValueError(
                f"cannot save metrics to {path.name!r}: "
                "suffix must be .json or .csv"
            )

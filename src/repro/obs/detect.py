"""Thermal-violation detection: a registry of detectors over trace records.

A :class:`Detector` consumes :class:`~repro.obs.trace.TraceRecord`\\ s — one
at a time, in time order — and produces structured :class:`Violation`
records.  The same detector instance works

- **offline**, over a saved trace: :func:`run_detectors`;
- **online**, during a run: interval/epoch records can be fed by any trace
  sink, and event-driven detectors attach straight to the engine's event
  log via :func:`event_callback` and
  :meth:`repro.sim.events.EventLog.subscribe`.

Shipped detectors (create a standard set with :func:`default_detectors`):

===========================  ==================================================
:class:`ThresholdDetector`    a core temperature exceeded ``T_DTM``
:class:`BoundDetector`        the observed temperature exceeded the analytic
                              ``T_peak`` bound of Algorithm 1
:class:`DtmThrashDetector`    too many DTM engage/release transitions on one
                              core within a sliding window
:class:`RotationStallDetector`  rotation was declared but epoch boundaries
                              stopped advancing
:class:`PowerMapDetector`     power-map/placement inconsistency: an idle core
                              drawing active power or a placed core drawing
                              less than idle power
:class:`UnsafeDegradationDetector`  the graceful-degradation contract of
                              ``repro.faults`` was not honoured: a sensor
                              dropout left the scheduler in ``normal`` mode
                              past the grace window, or temperatures crossed
                              ``T_DTM`` while already degraded
:class:`SloLatencyViolationDetector`  a tenant's request-latency error
                              budget ran out (serve layer; fed latencies,
                              not trace records)
:class:`QosDeadlineViolationDetector`  a task with a QoS deadline
                              (``docs/traffic.md``) completed past it, or
                              was still unfinished — e.g. shed under
                              overload — when its deadline passed
:class:`SpanOrphanDetector`   a finished span references a parent that is
                              not in the span set — broken context
                              propagation or ring-buffer eviction
===========================  ==================================================

Exceedance detectors emit one violation per *episode* (entering the bad
state), not one per interval, so a sustained excursion reads as a single
finding located at its onset.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from .. import units
from .slo import SloTarget, SloTracker
from .spans import SpanRecord
from .trace import (
    EpochRecord,
    EventRecord,
    IntervalRecord,
    TraceRecord,
    TraceRecorder,
    event_to_record,
)

#: Floating-point slack for time comparisons [s].
_TIME_EPS = 1e-12


@dataclass(frozen=True)
class Violation:
    """One detected anomaly, locatable in time (and usually on a core)."""

    detector: str
    time_s: float
    severity: str  # "warning" or "critical"
    message: str
    core: Optional[int] = None
    #: the observed value that tripped the detector.
    value: Optional[float] = None
    #: the limit it was compared against.
    limit: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable, ``None`` fields omitted)."""
        data: Dict[str, object] = {
            "detector": self.detector,
            "time_s": self.time_s,
            "severity": self.severity,
            "message": self.message,
        }
        if self.core is not None:
            data["core"] = self.core
        if self.value is not None:
            data["value"] = self.value
        if self.limit is not None:
            data["limit"] = self.limit
        return data


class Detector:
    """Base detector: dispatches records, accumulates violations."""

    name = "detector"

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def observe(self, record: TraceRecord) -> None:
        """Feed one trace record (in time order)."""
        if isinstance(record, IntervalRecord):
            self.on_interval(record)
        elif isinstance(record, EpochRecord):
            self.on_epoch(record)
        elif isinstance(record, EventRecord):
            self.on_event(record)
        else:
            raise TypeError(f"not a trace record: {type(record)}")

    def on_interval(self, record: IntervalRecord) -> None:
        """Hook: one simulated interval."""

    def on_epoch(self, record: EpochRecord) -> None:
        """Hook: one rotation-epoch boundary."""

    def on_event(self, record: EventRecord) -> None:
        """Hook: one simulation event."""

    def finish(self, end_time_s: float) -> None:
        """Hook: the trace ended at ``end_time_s`` (flush pending state)."""

    def emit(
        self,
        time_s: float,
        message: str,
        severity: str = "critical",
        core: Optional[int] = None,
        value: Optional[float] = None,
        limit: Optional[float] = None,
    ) -> Violation:
        """Record one violation (subclass convenience)."""
        violation = Violation(
            detector=self.name,
            time_s=float(time_s),
            severity=severity,
            message=message,
            core=core,
            value=value,
            limit=limit,
        )
        self.violations.append(violation)
        return violation


class _ExceedanceDetector(Detector):
    """Shared per-core episode logic: emit once when a core goes bad."""

    def __init__(self) -> None:
        super().__init__()
        self._in_episode: Dict[int, bool] = {}

    def _check_cores(
        self,
        record: IntervalRecord,
        values: Sequence[float],
        limit: float,
        what: str,
    ) -> None:
        for core, value in enumerate(values):
            bad = value > limit
            if bad and not self._in_episode.get(core, False):
                self.emit(
                    record.time_s,
                    f"core {core} {what}: {value:.2f} > {limit:.2f}",
                    core=core,
                    value=float(value),
                    limit=float(limit),
                )
            self._in_episode[core] = bad


class ThresholdDetector(_ExceedanceDetector):
    """A core temperature exceeded the DTM threshold ``T_DTM``."""

    name = "thermal-threshold"

    def __init__(self, limit_c: float, tolerance_c: float = 0.0) -> None:
        super().__init__()
        self.limit_c = float(limit_c)
        self.tolerance_c = float(tolerance_c)

    def on_interval(self, record: IntervalRecord) -> None:
        self._check_cores(
            record,
            record.temps_c,
            self.limit_c + self.tolerance_c,
            "exceeded the DTM threshold",
        )


class BoundDetector(_ExceedanceDetector):
    """A core temperature exceeded the analytic ``T_peak`` bound.

    The bound itself comes from Algorithm 1
    (:func:`repro.obs.analyze.compare_peak_to_bound` computes it from a
    trace plus a platform calculator); the detector takes the resulting
    number so it stays usable online, where the bound is known up front.
    """

    name = "analytic-bound"

    def __init__(self, bound_c: float, tolerance_c: float = 0.0) -> None:
        super().__init__()
        self.bound_c = float(bound_c)
        self.tolerance_c = float(tolerance_c)

    def on_interval(self, record: IntervalRecord) -> None:
        self._check_cores(
            record,
            record.temps_c,
            self.bound_c + self.tolerance_c,
            "exceeded the analytic T_peak bound",
        )


class DtmThrashDetector(Detector):
    """Too many DTM throttle transitions on one core within a window.

    Counts ``DtmEngaged``/``DtmReleased`` events per core over a sliding
    ``window_s``; more than ``max_transitions`` of them is thrash — the
    control loop is oscillating instead of settling.
    """

    name = "dtm-thrash"

    def __init__(
        self, window_s: float = units.ms(10.0), max_transitions: int = 6
    ) -> None:
        super().__init__()
        if window_s <= 0:
            raise ValueError("thrash window must be positive")
        self.window_s = float(window_s)
        self.max_transitions = int(max_transitions)
        self._times: Dict[int, Deque[float]] = {}
        self._alerted: Dict[int, bool] = {}

    def on_event(self, record: EventRecord) -> None:
        if record.event not in ("DtmEngaged", "DtmReleased"):
            return
        core = int(record.data["core"])
        queue = self._times.setdefault(core, deque())
        queue.append(record.time_s)
        while queue and queue[0] < record.time_s - self.window_s:
            queue.popleft()
        if len(queue) > self.max_transitions:
            if not self._alerted.get(core, False):
                self.emit(
                    record.time_s,
                    f"core {core} DTM thrash: {len(queue)} throttle "
                    f"transitions within {self.window_s * 1e3:.1f} ms",
                    severity="warning",
                    core=core,
                    value=float(len(queue)),
                    limit=float(self.max_transitions),
                )
            self._alerted[core] = True
        else:
            self._alerted[core] = False


class RotationStallDetector(Detector):
    """Rotation was declared but epoch boundaries stopped advancing.

    Once an epoch boundary with period ``tau`` has been seen, the next
    boundary is due within ``stall_factor * tau``; an interval that still
    places threads beyond that deadline means the rotation stalled (and the
    hot cores stopped trading places).  Fires once per stall.
    """

    name = "rotation-stall"

    def __init__(self, stall_factor: float = 3.0) -> None:
        super().__init__()
        if stall_factor <= 1.0:
            raise ValueError("stall factor must exceed 1")
        self.stall_factor = float(stall_factor)
        self._last_boundary_s: Optional[float] = None
        self._tau_s: Optional[float] = None
        self._stalled = False

    def on_epoch(self, record: EpochRecord) -> None:
        self._last_boundary_s = record.time_s
        self._tau_s = record.tau_s
        self._stalled = False

    def on_interval(self, record: IntervalRecord) -> None:
        if self._tau_s is None or self._stalled or not record.placements:
            return
        deadline = self._last_boundary_s + self.stall_factor * self._tau_s
        if record.time_s > deadline + _TIME_EPS:
            self._stalled = True
            self.emit(
                record.time_s,
                f"rotation stalled: no epoch boundary for "
                f"{(record.time_s - self._last_boundary_s) * 1e3:.2f} ms "
                f"(tau = {self._tau_s * 1e3:.2f} ms)",
                severity="warning",
                value=record.time_s - self._last_boundary_s,
                limit=self.stall_factor * self._tau_s,
            )


class PowerMapDetector(Detector):
    """Power-map/placement inconsistency.

    Every core without a placed thread must draw (close to) idle power, and
    every core with a placed thread must draw at least idle power — anything
    else means the power map and the placement map disagree about who is
    running where.
    """

    name = "power-map"

    def __init__(self, idle_power_w: float, tolerance_w: float = 1e-6) -> None:
        super().__init__()
        self.idle_power_w = float(idle_power_w)
        self.tolerance_w = float(tolerance_w)

    def on_interval(self, record: IntervalRecord) -> None:
        placed = set(record.placements.values())
        for core, power in enumerate(record.power_w):
            if core in placed:
                if power < self.idle_power_w - self.tolerance_w:
                    self.emit(
                        record.time_s,
                        f"core {core} has a placed thread but draws "
                        f"{power:.3f} W < idle {self.idle_power_w:.3f} W",
                        core=core,
                        value=float(power),
                        limit=self.idle_power_w,
                    )
            elif power > self.idle_power_w + self.tolerance_w:
                self.emit(
                    record.time_s,
                    f"core {core} is unplaced but draws {power:.3f} W "
                    f"> idle {self.idle_power_w:.3f} W",
                    core=core,
                    value=float(power),
                    limit=self.idle_power_w,
                )


class UnsafeDegradationDetector(_ExceedanceDetector):
    """The graceful-degradation contract was not honoured under faults.

    Watches the fault/degradation events of ``repro.faults``
    (``docs/faults.md``) and fires in two situations:

    - **warning** — a ``SensorFaultInjected`` dropout occurred while the
      scheduler reported ``normal`` mode, and no ``DegradationChanged``
      to ``degraded``/``safe-park`` followed within ``grace_s``: the
      scheduler kept trusting stale readings;
    - **critical** — an interval's ground-truth temperature exceeded
      ``dtm_threshold_c + tolerance_c`` *while* the scheduler was already
      in a degraded mode: degradation fired but did not keep the chip
      safe (episode-based, once per excursion).

    On a fault-free trace neither pattern can occur and the detector is
    silent, so :func:`default_detectors` includes it unconditionally.
    """

    name = "faults-unsafe-degradation"

    def __init__(
        self,
        dtm_threshold_c: float = 70.0,
        tolerance_c: float = 0.5,
        grace_s: float = units.ms(3.0),
    ) -> None:
        super().__init__()
        self.dtm_threshold_c = float(dtm_threshold_c)
        self.tolerance_c = float(tolerance_c)
        if grace_s <= 0:
            raise ValueError("grace window must be positive")
        self.grace_s = float(grace_s)
        self._mode = "normal"
        self._pending_dropout_s: Optional[float] = None

    def _check_grace(self, now_s: float) -> None:
        if (
            self._pending_dropout_s is not None
            and self._mode == "normal"
            and now_s > self._pending_dropout_s + self.grace_s + _TIME_EPS
        ):
            self.emit(
                self._pending_dropout_s,
                f"sensor dropout at {self._pending_dropout_s * 1e3:.2f} ms "
                f"not followed by degradation within "
                f"{self.grace_s * 1e3:.1f} ms",
                severity="warning",
                value=now_s - self._pending_dropout_s,
                limit=self.grace_s,
            )
            self._pending_dropout_s = None

    def on_event(self, record: EventRecord) -> None:
        self._check_grace(record.time_s)
        if record.event == "SensorFaultInjected":
            if (
                record.data.get("kind") == "dropout"
                and self._mode == "normal"
                and self._pending_dropout_s is None
            ):
                self._pending_dropout_s = record.time_s
        elif record.event == "DegradationChanged":
            self._mode = str(record.data["new_mode"])
            if self._mode != "normal":
                self._pending_dropout_s = None

    def on_interval(self, record: IntervalRecord) -> None:
        self._check_grace(record.time_s)
        if self._mode == "normal":
            # reset episode state so a later degraded excursion re-fires
            self._in_episode.clear()
            return
        self._check_cores(
            record,
            record.temps_c,
            self.dtm_threshold_c + self.tolerance_c,
            f"exceeded T_DTM while scheduler was {self._mode}",
        )

    def finish(self, end_time_s: float) -> None:
        self._check_grace(end_time_s)


class SloLatencyViolationDetector(Detector):
    """A tenant's request-latency error budget ran out.

    Unlike the thermal detectors this one is fed ``(time, latency)``
    observations by the serve layer (:meth:`observe_latency`), not trace
    records.  It wraps an :class:`~repro.obs.slo.SloTracker` and follows
    the episode convention: it fires **exactly once** when the cumulative
    budget crosses exhaustion, then stays silent until the budget recovers
    below 1.0 (which, with cumulative accounting, requires a sustained
    run of fast requests) and is exhausted again.
    """

    name = "slo-latency-violation"

    def __init__(self, target: SloTarget, tenant: str = ""):
        super().__init__()
        self.tracker = SloTracker(target)
        self.tenant = tenant
        self._in_violation = False

    def observe_latency(self, time_s: float, latency_s: float) -> None:
        """Fold one served request into the budget; emit on exhaustion."""
        self.tracker.record(time_s, latency_s)
        if self.tracker.exhausted and not self._in_violation:
            self._in_violation = True
            who = f"tenant {self.tenant!r}" if self.tenant else "service"
            self.emit(
                time_s,
                f"{who} exhausted its latency error budget: "
                f"{self.tracker.slow}/{self.tracker.total} requests over "
                f"{self.tracker.target.latency_s * 1e3:.1f} ms "
                f"(budget {self.tracker.target.error_budget:.2%}, "
                f"burn rate {self.tracker.burn_rate(time_s):.1f}x)",
                value=self.tracker.violation_fraction,
                limit=self.tracker.target.error_budget,
            )
        elif not self.tracker.exhausted:
            self._in_violation = False


class QosDeadlineViolationDetector(Detector):
    """A task with a QoS deadline missed it.

    Deadlines are learned from the trace itself: ``TaskArrived`` events
    carry the absolute deadline when the task has one
    (``docs/traffic.md``), so the detector needs no out-of-band
    configuration and :func:`default_detectors` includes it
    unconditionally — on a trace without QoS annotations it is silent.

    Two failure shapes are reported:

    - **critical** — a ``TaskCompleted`` arrived after the task's
      deadline: the response time exceeded the contract;
    - **warning** — the trace ended (or the task was still running at
      :meth:`finish`) past a deadline with no completion: the task was
      parked/shed under overload, or simply never finished in time.
    """

    name = "qos-deadline-violation"

    def __init__(self) -> None:
        super().__init__()
        #: task id -> absolute deadline [s], for tasks not yet completed
        self._deadlines: Dict[int, float] = {}

    def on_event(self, record: EventRecord) -> None:
        if record.event == "TaskArrived":
            deadline = record.data.get("deadline_s")
            if deadline is not None:
                self._deadlines[int(record.data["task_id"])] = float(deadline)
        elif record.event == "TaskCompleted":
            task_id = int(record.data["task_id"])
            deadline = self._deadlines.pop(task_id, None)
            if deadline is None:
                return
            if record.time_s > deadline + _TIME_EPS:
                self.emit(
                    record.time_s,
                    f"task {task_id} missed its deadline: completed at "
                    f"{record.time_s * 1e3:.2f} ms, deadline "
                    f"{deadline * 1e3:.2f} ms "
                    f"(response {float(record.data['response_time_s']) * 1e3:.2f} ms)",
                    value=float(record.time_s),
                    limit=float(deadline),
                )

    def finish(self, end_time_s: float) -> None:
        for task_id in sorted(self._deadlines):
            deadline = self._deadlines[task_id]
            if end_time_s > deadline + _TIME_EPS:
                self.emit(
                    deadline,
                    f"task {task_id} never completed: its deadline "
                    f"({deadline * 1e3:.2f} ms) passed before the trace "
                    f"ended (shed under overload, or still queued)",
                    severity="warning",
                    value=float(end_time_s),
                    limit=float(deadline),
                )
        self._deadlines.clear()


class SpanOrphanDetector(Detector):
    """A span's parent is missing from the span set.

    Orphans mean broken context propagation (a span created on the wrong
    task/context) or ring-buffer eviction of a still-referenced parent —
    either way the waterfall is lying about causality, so each orphan is
    reported as a warning located at the span's start time.
    """

    name = "span-orphan"

    def check(self, spans: Sequence[SpanRecord]) -> List[Violation]:
        """Scan a span set; one warning per orphaned span."""
        ids = {span.span_id for span in spans}
        found: List[Violation] = []
        for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
            if span.parent_id is not None and span.parent_id not in ids:
                found.append(
                    self.emit(
                        span.start_s,
                        f"span {span.span_id} ({span.name!r}, trace "
                        f"{span.trace_id}) references missing parent "
                        f"{span.parent_id}",
                        severity="warning",
                        value=float(span.span_id),
                    )
                )
        return found


def default_detectors(
    dtm_threshold_c: float = 70.0,
    idle_power_w: Optional[float] = None,
    bound_c: Optional[float] = None,
    threshold_tolerance_c: float = 0.0,
    bound_tolerance_c: float = 0.0,
    thrash_window_s: float = units.ms(10.0),
    thrash_max_transitions: int = 6,
    stall_factor: float = 3.0,
    degradation_grace_s: float = units.ms(3.0),
    degradation_tolerance_c: float = 0.5,
) -> List[Detector]:
    """The standard detector set; ``None`` parameters skip their detector.

    :class:`UnsafeDegradationDetector` and
    :class:`QosDeadlineViolationDetector` are always included — both are
    silent on traces without faults / QoS deadlines, so they cost nothing
    outside those runs.
    """
    detectors: List[Detector] = [
        ThresholdDetector(dtm_threshold_c, threshold_tolerance_c),
        DtmThrashDetector(thrash_window_s, thrash_max_transitions),
        RotationStallDetector(stall_factor),
        UnsafeDegradationDetector(
            dtm_threshold_c, degradation_tolerance_c, degradation_grace_s
        ),
        QosDeadlineViolationDetector(),
    ]
    if bound_c is not None:
        detectors.append(BoundDetector(bound_c, bound_tolerance_c))
    if idle_power_w is not None:
        detectors.append(PowerMapDetector(idle_power_w))
    return detectors


def run_detectors(
    trace: TraceRecorder, detectors: Iterable[Detector]
) -> List[Violation]:
    """Run detectors offline over a full trace; violations sorted by time."""
    detectors = list(detectors)
    end_time_s = 0.0
    for record in trace:
        end_time_s = max(end_time_s, record.time_s)
        for detector in detectors:
            detector.observe(record)
    for detector in detectors:
        detector.finish(end_time_s)
    violations = [v for d in detectors for v in d.violations]
    return sorted(violations, key=lambda v: (v.time_s, v.detector))


def event_callback(detectors: Iterable[Detector]):
    """A callable for :meth:`repro.sim.events.EventLog.subscribe`.

    Wires event-driven detectors (e.g. :class:`DtmThrashDetector`) into a
    *live* run::

        detectors = [DtmThrashDetector()]
        sim.events.subscribe(event_callback(detectors))

    Each event is serialized to the same :class:`EventRecord` shape the
    offline path sees, so online and offline detection agree.
    """
    detectors = list(detectors)

    def _on_event(event: object) -> None:
        record = event_to_record(event)
        for detector in detectors:
            detector.observe(record)

    return _on_event

"""``python -m repro.obs`` — analytics CLI over saved run artifacts.

Operates on the files the library already writes — JSONL traces
(``TraceRecorder.write_jsonl`` / ``JsonlTraceSink``), metrics-snapshot
JSON (``MetricsRegistry.save``) and result JSON (``repro.io.save_result``):

- ``summarize <trace.jsonl>`` — derived statistics of one run (thermal
  stress, DTM duty cycle, migrations, rotation adherence, analytic bound);
- ``check <trace.jsonl>`` — run the violation detectors; exit status 1
  when anything fires (the CI gate);
- ``diff <a> <b>`` — compare two runs' snapshots or analyses with
  configurable tolerances; exit status 1 on drift (the regression gate);
- ``export <artifact>`` — render OpenMetrics or a self-contained HTML
  report;
- ``spans {summarize,slowest,export} <spans.jsonl>`` — analytics over
  request-span JSONL written by :class:`~repro.obs.spans.SpanTracer`:
  per-name duration statistics, the slowest traces, or a trace-waterfall
  HTML export.

``--config {table1,motivational,small_test}`` names the platform the trace
was recorded on; it unlocks everything that needs platform knowledge (the
AMD-ring breakdown, the DTM threshold and idle power, and the analytic
``T_peak`` bound of Algorithm 1).  The obs *library* stays strictly below
``repro.sim``; this CLI is the one driver that reaches across the layers,
and imports them lazily.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .._cli import (
    EXIT_FINDINGS,
    EXIT_OK,
    main_with_exit,
    print_json,
    run_cli,
)
from .analyze import RunAnalysis, analysis_to_flat, analyze
from .detect import (
    BoundDetector,
    PowerMapDetector,
    Violation,
    default_detectors,
    run_detectors,
)
from .export import to_openmetrics, write_html_report, write_trace_waterfall
from .spans import SpanRecord, read_spans_jsonl
from .trace import TraceRecorder

#: Drift patterns ``diff`` skips unless ``--no-default-ignores``: wall-clock
#: latency histograms are real measurements and never reproduce.
DEFAULT_DIFF_IGNORES = (r"latency_s",)

_CONFIG_NAMES = ("table1", "motivational", "small_test")


class _Platform:
    """Lazily built platform knowledge for one named configuration."""

    def __init__(self, name: str):
        from .. import config as _config

        self.config = getattr(_config, name)()
        self._calculator = None

    @property
    def threshold_c(self) -> float:
        return self.config.thermal.dtm_threshold_c

    @property
    def idle_power_w(self) -> float:
        return self.config.thermal.idle_power_w

    def ring_of(self, core: int) -> int:
        from ..arch.amd import AmdRings
        from ..arch.topology import Mesh

        if not hasattr(self, "_rings"):
            self._rings = AmdRings(
                Mesh(self.config.mesh_width, self.config.mesh_height)
            )
        return self._rings.ring_of(core)

    def peak_fn(self):
        """Algorithm 1 as a ``(power_seq, tau) -> T_peak`` callable."""
        if self._calculator is None:
            from ..core.peak_temperature import PeakTemperatureCalculator
            from ..thermal.calibrate import calibrated_model
            from ..thermal.matex import ThermalDynamics

            dynamics = ThermalDynamics(calibrated_model(self.config))
            self._calculator = PeakTemperatureCalculator(
                dynamics, self.config.thermal.ambient_c
            )
        calculator = self._calculator
        return lambda seq, tau: calculator.peak(seq, tau, within_epoch_samples=4)


def _load_trace(path: str) -> TraceRecorder:
    trace = TraceRecorder.read_jsonl(path)
    if not trace.intervals():
        raise SystemExit(f"error: {path} holds no interval records")
    return trace


def _build_analysis(args: argparse.Namespace, trace: TraceRecorder) -> RunAnalysis:
    platform = _Platform(args.config) if args.config else None
    limit_c = (
        args.threshold
        if args.threshold is not None
        else (platform.threshold_c if platform else 70.0)
    )
    return analyze(
        trace,
        limit_c=limit_c,
        ring_of=platform.ring_of if platform else None,
        peak_fn=platform.peak_fn() if platform else None,
        delta=getattr(args, "delta", None),
        bound_tolerance_c=getattr(args, "bound_tolerance", 0.0),
    )


# -- summarize -----------------------------------------------------------------


def _cmd_summarize(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    analysis = _build_analysis(args, trace)
    flat = analysis_to_flat(analysis)
    if args.json:
        print_json(flat)
        return EXIT_OK
    from ..experiments.reporting import render_metrics_table

    thermal = analysis.thermal
    print(
        f"trace {args.trace}: {thermal.duration_s * 1e3:.2f} ms simulated, "
        f"{len(trace.intervals())} intervals, "
        f"{len(trace.epochs())} epoch boundaries, {len(trace.events())} events"
    )
    print(
        f"peak {thermal.peak_c:.2f} C on core {thermal.peak_core} at "
        f"{thermal.peak_time_s * 1e3:.2f} ms "
        f"(limit {thermal.limit_c:.1f} C); "
        f"DTM duty cycle {analysis.dtm.duty_cycle:.2%}, "
        f"thrash {analysis.dtm.thrash_rate_hz:.1f} transitions/s"
    )
    if analysis.rotation is not None:
        rotation = analysis.rotation
        print(
            f"rotation: {rotation.epochs} boundaries, final tau "
            f"{rotation.final_tau_s * 1e3:.2f} ms, max period deviation "
            f"{rotation.max_deviation:.2%}"
        )
    if analysis.bound is not None:
        bound = analysis.bound
        verdict = "EXCEEDED" if bound.exceeded else "held"
        print(
            f"analytic T_peak bound (Algorithm 1, delta={bound.delta}): "
            f"{bound.analytic_peak_c:.2f} C — {verdict}, margin "
            f"{bound.margin_c:+.2f} C"
        )
    print()
    print(render_metrics_table(flat, title="derived statistics"))
    return EXIT_OK


# -- check ---------------------------------------------------------------------


def _check_violations(
    args: argparse.Namespace, trace: TraceRecorder
) -> Tuple[List[Violation], Optional[RunAnalysis]]:
    platform = _Platform(args.config) if args.config else None
    threshold_c = (
        args.threshold
        if args.threshold is not None
        else (platform.threshold_c if platform else 70.0)
    )
    detectors = default_detectors(
        dtm_threshold_c=threshold_c,
        threshold_tolerance_c=args.threshold_tolerance,
        thrash_window_s=args.thrash_window,
        thrash_max_transitions=args.thrash_max,
        stall_factor=args.stall_factor,
    )
    analysis: Optional[RunAnalysis] = None
    if platform is not None:
        detectors.append(PowerMapDetector(platform.idle_power_w))
        analysis = _build_analysis(args, trace)
        if analysis.bound is not None:
            detectors.append(
                BoundDetector(
                    analysis.bound.analytic_peak_c,
                    tolerance_c=args.bound_tolerance,
                )
            )
    elif args.bound_c is not None:
        detectors.append(BoundDetector(args.bound_c, args.bound_tolerance))
    return run_detectors(trace, detectors), analysis


def _cmd_check(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    violations, _ = _check_violations(args, trace)
    if args.json:
        print_json([v.to_dict() for v in violations])
    else:
        from ..experiments.reporting import render_violations_table

        print(render_violations_table(violations, title=f"check {args.trace}"))
    return EXIT_FINDINGS if violations else EXIT_OK


# -- diff ----------------------------------------------------------------------


def _load_flat(path: str, args: argparse.Namespace) -> Dict[str, float]:
    """A flat ``name -> float`` view of any supported artifact."""
    if path.endswith(".jsonl"):
        return analysis_to_flat(_build_analysis(args, _load_trace(path)))
    from ..io import load_metrics_snapshot

    return load_metrics_snapshot(path)


def _cmd_diff(args: argparse.Namespace) -> int:
    flat_a = _load_flat(args.a, args)
    flat_b = _load_flat(args.b, args)
    patterns = [] if args.no_default_ignores else list(DEFAULT_DIFF_IGNORES)
    patterns.extend(args.ignore)
    compiled = [re.compile(p) for p in patterns]

    def ignored(name: str) -> bool:
        return any(p.search(name) for p in compiled)

    drifts: List[Tuple[str, Optional[float], Optional[float]]] = []
    for name in sorted(set(flat_a) | set(flat_b)):
        if ignored(name):
            continue
        if name not in flat_a or name not in flat_b:
            drifts.append((name, flat_a.get(name), flat_b.get(name)))
            continue
        a, b = flat_a[name], flat_b[name]
        allowed = args.tolerance + args.rel_tolerance * max(abs(a), abs(b))
        if abs(a - b) > allowed:
            drifts.append((name, a, b))
    if args.json:
        print_json(
            [{"metric": name, "a": a, "b": b} for name, a, b in drifts]
        )
    elif drifts:
        from ..experiments.reporting import render_table

        rows = [
            [
                name,
                "(missing)" if a is None else f"{a:g}",
                "(missing)" if b is None else f"{b:g}",
                "" if a is None or b is None else f"{b - a:+g}",
            ]
            for name, a, b in drifts
        ]
        print(
            render_table(
                ["metric", args.a, args.b, "delta"],
                rows,
                title=f"{len(drifts)} drifting metrics",
            )
        )
    else:
        print(
            f"no drift: {len([n for n in flat_a if not ignored(n)])} compared "
            f"metrics within tolerance "
            f"(abs {args.tolerance:g}, rel {args.rel_tolerance:g})"
        )
    return EXIT_FINDINGS if drifts else EXIT_OK


# -- export --------------------------------------------------------------------


def _cmd_export(args: argparse.Namespace) -> int:
    out = Path(args.output)
    if args.format == "openmetrics":
        if args.input.endswith(".jsonl"):
            flat = analysis_to_flat(_build_analysis(args, _load_trace(args.input)))
        else:
            from ..io import load_metrics_snapshot

            flat = load_metrics_snapshot(args.input)
        out.write_text(to_openmetrics(flat, prefix=args.prefix))
    else:  # html
        if not args.input.endswith(".jsonl"):
            raise SystemExit("error: HTML export needs a trace (.jsonl) input")
        trace = _load_trace(args.input)
        analysis = _build_analysis(args, trace)
        violations, _ = _check_violations(args, trace)
        write_html_report(
            out,
            trace,
            analysis,
            violations,
            title=args.title or f"Run report: {Path(args.input).name}",
        )
    print(f"wrote {out} ({out.stat().st_size} bytes)")
    return EXIT_OK


# -- spans ---------------------------------------------------------------------


def _load_spans(path: str) -> List[SpanRecord]:
    spans = read_spans_jsonl(path)
    if not spans:
        raise SystemExit(f"error: {path} holds no span records")
    return spans


def _trace_bounds(spans: Sequence[SpanRecord]) -> Tuple[float, float]:
    return (
        min(s.start_s for s in spans),
        max(s.end_s for s in spans),
    )


def _cmd_spans_summarize(args: argparse.Namespace) -> int:
    spans = _load_spans(args.spans)
    by_name: Dict[str, List[float]] = {}
    traces: Dict[int, List[SpanRecord]] = {}
    errors = 0
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration_s)
        traces.setdefault(span.trace_id, []).append(span)
        if not span.status.startswith("ok"):
            errors += 1
    if args.json:
        print_json(
            {
                "spans": len(spans),
                "traces": len(traces),
                "errors": errors,
                "by_name": {
                    name: {
                        "count": len(durations),
                        "total_s": sum(durations),
                        "mean_s": sum(durations) / len(durations),
                        "max_s": max(durations),
                    }
                    for name, durations in sorted(by_name.items())
                },
            }
        )
        return EXIT_OK
    from ..experiments.reporting import render_table

    print(
        f"{args.spans}: {len(spans)} spans in {len(traces)} traces, "
        f"{errors} with error status"
    )
    rows = [
        [
            name,
            str(len(durations)),
            f"{sum(durations) * 1e3:.2f}",
            f"{sum(durations) / len(durations) * 1e3:.3f}",
            f"{max(durations) * 1e3:.3f}",
        ]
        for name, durations in sorted(
            by_name.items(), key=lambda kv: -sum(kv[1])
        )
    ]
    print(
        render_table(
            ["span", "count", "total [ms]", "mean [ms]", "max [ms]"],
            rows,
            title="span durations",
        )
    )
    return EXIT_OK


def _cmd_spans_slowest(args: argparse.Namespace) -> int:
    spans = _load_spans(args.spans)
    traces: Dict[int, List[SpanRecord]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    ranked = sorted(
        traces.items(),
        key=lambda kv: -(_trace_bounds(kv[1])[1] - _trace_bounds(kv[1])[0]),
    )[: args.limit]
    if args.json:
        print_json(
            [
                {
                    "trace_id": trace_id,
                    "duration_s": _trace_bounds(ts)[1] - _trace_bounds(ts)[0],
                    "spans": len(ts),
                    "root": next(
                        (s.name for s in ts if s.parent_id is None), None
                    ),
                }
                for trace_id, ts in ranked
            ]
        )
        return EXIT_OK
    from ..experiments.reporting import render_table

    rows = []
    for trace_id, trace_spans in ranked:
        start, end = _trace_bounds(trace_spans)
        root = next(
            (s.name for s in trace_spans if s.parent_id is None), "(orphaned)"
        )
        rows.append(
            [
                str(trace_id),
                root,
                str(len(trace_spans)),
                f"{(end - start) * 1e3:.3f}",
            ]
        )
    print(
        render_table(
            ["trace", "root span", "spans", "duration [ms]"],
            rows,
            title=f"{len(ranked)} slowest traces",
        )
    )
    return EXIT_OK


def _cmd_spans_export(args: argparse.Namespace) -> int:
    spans = _load_spans(args.spans)
    out = Path(args.output)
    write_trace_waterfall(
        out,
        spans,
        title=args.title or f"Trace waterfall: {Path(args.spans).name}",
        max_traces=args.limit,
    )
    print(f"wrote {out} ({out.stat().st_size} bytes)")
    return EXIT_OK


# -- argument parsing ----------------------------------------------------------


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        choices=_CONFIG_NAMES,
        help="platform the trace was recorded on (unlocks ring breakdown, "
        "idle-power consistency and the analytic T_peak bound)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        help="thermal limit in degC (default: the config's T_DTM, or 70)",
    )
    parser.add_argument(
        "--delta",
        type=int,
        help="rotation period in epochs (default: inferred from the trace)",
    )
    parser.add_argument(
        "--bound-tolerance",
        type=float,
        default=0.0,
        help="slack in degC before the analytic bound counts as exceeded",
    )


def _add_check_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threshold-tolerance",
        type=float,
        default=0.0,
        help="slack in degC before the DTM threshold counts as exceeded",
    )
    parser.add_argument(
        "--bound-c",
        type=float,
        help="analytic bound in degC to check against (when no --config)",
    )
    parser.add_argument(
        "--thrash-window",
        type=float,
        default=10e-3,
        help="DTM thrash detection window in seconds",
    )
    parser.add_argument(
        "--thrash-max",
        type=int,
        default=6,
        help="max DTM transitions per core within the window",
    )
    parser.add_argument(
        "--stall-factor",
        type=float,
        default=3.0,
        help="epoch gap (in taus) after which rotation counts as stalled",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analytics over saved observability artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="derived statistics of one trace")
    p_sum.add_argument("trace", help="trace JSONL file")
    _add_platform_args(p_sum)
    p_sum.add_argument("--json", action="store_true", help="machine output")
    p_sum.set_defaults(func=_cmd_summarize)

    p_check = sub.add_parser("check", help="run violation detectors (exit 1 on hit)")
    p_check.add_argument("trace", help="trace JSONL file")
    _add_platform_args(p_check)
    _add_check_args(p_check)
    p_check.add_argument("--json", action="store_true", help="machine output")
    p_check.set_defaults(func=_cmd_check)

    p_diff = sub.add_parser(
        "diff", help="compare two runs' snapshots/analyses (exit 1 on drift)"
    )
    p_diff.add_argument("a", help="snapshot/result .json or trace .jsonl")
    p_diff.add_argument("b", help="snapshot/result .json or trace .jsonl")
    _add_platform_args(p_diff)
    p_diff.add_argument(
        "--tolerance", type=float, default=0.0, help="absolute tolerance"
    )
    p_diff.add_argument(
        "--rel-tolerance", type=float, default=0.0, help="relative tolerance"
    )
    p_diff.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="REGEX",
        help="skip metrics matching this pattern (repeatable)",
    )
    p_diff.add_argument(
        "--no-default-ignores",
        action="store_true",
        help=f"also compare wall-clock metrics ({', '.join(DEFAULT_DIFF_IGNORES)})",
    )
    p_diff.add_argument("--json", action="store_true", help="machine output")
    p_diff.set_defaults(func=_cmd_diff)

    p_exp = sub.add_parser(
        "export", help="render OpenMetrics or a self-contained HTML report"
    )
    p_exp.add_argument("input", help="trace .jsonl or snapshot/result .json")
    p_exp.add_argument(
        "--format",
        choices=("openmetrics", "html"),
        required=True,
        help="output format",
    )
    p_exp.add_argument("-o", "--output", required=True, help="output file")
    p_exp.add_argument(
        "--prefix", default="repro", help="OpenMetrics metric-name prefix"
    )
    p_exp.add_argument("--title", help="HTML report title")
    _add_platform_args(p_exp)
    _add_check_args(p_exp)
    p_exp.set_defaults(func=_cmd_export)

    p_spans = sub.add_parser(
        "spans", help="analytics over request-span JSONL (SpanTracer output)"
    )
    spans_sub = p_spans.add_subparsers(dest="spans_command", required=True)

    p_ss = spans_sub.add_parser(
        "summarize", help="per-span-name duration statistics"
    )
    p_ss.add_argument("spans", help="span JSONL file")
    p_ss.add_argument("--json", action="store_true", help="machine output")
    p_ss.set_defaults(func=_cmd_spans_summarize)

    p_sl = spans_sub.add_parser("slowest", help="rank traces by duration")
    p_sl.add_argument("spans", help="span JSONL file")
    p_sl.add_argument(
        "--limit", type=int, default=10, help="number of traces to show"
    )
    p_sl.add_argument("--json", action="store_true", help="machine output")
    p_sl.set_defaults(func=_cmd_spans_slowest)

    p_se = spans_sub.add_parser(
        "export", help="render a self-contained trace-waterfall HTML file"
    )
    p_se.add_argument("spans", help="span JSONL file")
    p_se.add_argument("-o", "--output", required=True, help="output HTML file")
    p_se.add_argument(
        "--limit", type=int, default=20, help="max traces in the waterfall"
    )
    p_se.add_argument("--title", help="HTML document title")
    p_se.set_defaults(func=_cmd_spans_export)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_cli(lambda: args.func(args))


if __name__ == "__main__":
    main_with_exit(main)

"""The observer bundle the engine threads through its hot loop.

An :class:`Observer` groups the three optional observability components —
structured trace recorder, metrics registry, phase profiler — behind one
handle.  The engine accepts an observer explicitly
(``IntervalSimulator(..., observer=...)``) or builds one from
``SystemConfig.obs`` (:meth:`Observer.from_config`); with everything
disabled (the default) no observer exists at all and the hot loop pays
only ``None`` checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .metrics import MetricsRegistry
from .profiling import PhaseProfiler
from .trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import ObservabilityConfig


class Observer:
    """Optional trace recorder + metrics registry + phase profiler."""

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
    ):
        self.trace = trace
        self.metrics = metrics
        self.profiler = profiler

    @classmethod
    def from_config(cls, obs_config: "ObservabilityConfig") -> Optional["Observer"]:
        """Build the observer ``SystemConfig.obs`` asks for (None if all off).

        ``trace_path`` takes precedence over the in-memory ``trace`` flag:
        when set, the trace component is a streaming
        :class:`~repro.obs.sink.JsonlTraceSink` writing to that file.
        """
        if not obs_config.any_enabled:
            return None
        if obs_config.trace_path:
            from .sink import JsonlTraceSink

            trace: Optional[TraceRecorder] = JsonlTraceSink(obs_config.trace_path)
        elif obs_config.trace:
            trace = TraceRecorder()
        else:
            trace = None
        return cls(
            trace=trace,
            metrics=MetricsRegistry() if obs_config.metrics else None,
            profiler=PhaseProfiler() if obs_config.profiling else None,
        )

    @classmethod
    def full(cls) -> "Observer":
        """An observer with every component enabled (tests, examples)."""
        return cls(
            trace=TraceRecorder(),
            metrics=MetricsRegistry(),
            profiler=PhaseProfiler(),
        )

    def close(self) -> None:
        """Finalize streaming components (flushes/closes a trace sink)."""
        if self.trace is not None:
            self.trace.close()

    def __repr__(self) -> str:
        parts = [
            name
            for name, component in (
                ("trace", self.trace),
                ("metrics", self.metrics),
                ("profiler", self.profiler),
            )
            if component is not None
        ]
        return f"Observer({', '.join(parts) or 'empty'})"

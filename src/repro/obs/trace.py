"""Structured per-interval trace recording with JSONL export.

The :class:`TraceRecorder` is the observability layer's answer to "what did
the engine actually do, interval by interval?".  It collects three kinds of
typed, timestamped records:

- :class:`IntervalRecord` — one per simulated interval: the placement map,
  the per-core power map and end-of-interval core temperatures, per-core
  frequencies, and the DTM throttle state;
- :class:`EpochRecord` — one per rotation-epoch boundary (schedulers that
  rotate expose their interval ``tau`` through
  :class:`~repro.sched.base.SchedulerDecision`);
- :class:`EventRecord` — a serialized mirror of every structured
  :class:`~repro.sim.events.Event` (arrivals, completions, migrations, DTM
  engage/release); the recorder subscribes to the engine's
  :class:`~repro.sim.events.EventLog`.

All records are plain-data (floats, ints, strings, dicts and tuples
thereof), so the whole trace round-trips losslessly through JSON Lines:
``TraceRecorder.from_jsonl(recorder.to_jsonl())`` compares equal to the
original recorder.  Python's ``json`` emits floats via ``repr`` (shortest
exact form), so no precision is lost.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, fields as _dc_fields, is_dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

PathLike = Union[str, Path]


@dataclass(frozen=True)
class IntervalRecord:
    """One simulated interval, as the engine executed it.

    ``time_s`` is the interval's *start*; temperatures are the core
    temperatures at the interval's *end* (after the exact thermal step).
    """

    time_s: float
    dt_s: float
    #: thread id -> core id for every placed thread this interval.
    placements: Dict[str, int]
    #: per-core power map [W] the thermal step integrated.
    power_w: Tuple[float, ...]
    #: per-core temperatures [degC] at the end of the interval.
    temps_c: Tuple[float, ...]
    #: per-core frequencies [Hz] after DTM clamping.
    frequencies_hz: Tuple[float, ...]
    #: ids of cores currently DTM-throttled.
    dtm_throttled: Tuple[int, ...] = ()


@dataclass(frozen=True)
class EpochRecord:
    """A rotation-epoch boundary (``tau`` as decided by the scheduler)."""

    time_s: float
    epoch: int
    tau_s: float


@dataclass(frozen=True)
class EventRecord:
    """A structured simulation event, in serialized form.

    ``event`` is the event class name (e.g. ``"ThreadMigrated"``);
    ``data`` holds the event's fields minus ``time_s``.
    """

    time_s: float
    event: str
    data: Dict[str, object] = field(default_factory=dict)


TraceRecord = Union[IntervalRecord, EpochRecord, EventRecord]

#: JSONL ``kind`` tag per record class.
_KIND_OF = {IntervalRecord: "interval", EpochRecord: "epoch", EventRecord: "event"}


def record_to_json_line(record: TraceRecord) -> str:
    """One trace record as its canonical JSONL line (no trailing newline)."""
    payload = {"kind": _KIND_OF[type(record)], **vars(record)}
    return json.dumps(payload, sort_keys=True)


def event_to_record(event: object) -> EventRecord:
    """Serialize a timestamped event dataclass into an :class:`EventRecord`.

    Shared by :meth:`TraceRecorder.record_event` and the online detector
    path (:func:`repro.obs.detect.event_callback`), so both see identical
    record shapes.
    """
    if not is_dataclass(event):
        raise TypeError(f"expected an event dataclass, got {type(event)}")
    data = {
        f.name: getattr(event, f.name)
        for f in _dc_fields(event)
        if f.name != "time_s"
    }
    return EventRecord(
        time_s=float(getattr(event, "time_s")),
        event=type(event).__name__,
        data=data,
    )


class TraceRecorder:
    """Append-only store of structured trace records, JSONL-serializable."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    # -- recording ----------------------------------------------------------

    def _emit(self, record: TraceRecord) -> None:
        """Store one freshly built record (subclass hook: sinks stream it)."""
        self.records.append(record)

    def record_interval(
        self,
        time_s: float,
        dt_s: float,
        placements: Mapping[str, int],
        power_w: Sequence[float],
        temps_c: Sequence[float],
        frequencies_hz: Sequence[float],
        dtm_throttled: Sequence[int] = (),
    ) -> IntervalRecord:
        """Append one interval record (values are copied and coerced)."""
        record = IntervalRecord(
            time_s=float(time_s),
            dt_s=float(dt_s),
            placements={str(t): int(c) for t, c in sorted(placements.items())},
            power_w=tuple(float(p) for p in power_w),
            temps_c=tuple(float(t) for t in temps_c),
            frequencies_hz=tuple(float(f) for f in frequencies_hz),
            dtm_throttled=tuple(int(c) for c in dtm_throttled),
        )
        self._emit(record)
        return record

    def record_epoch(self, time_s: float, epoch: int, tau_s: float) -> EpochRecord:
        """Append a rotation-epoch boundary record."""
        record = EpochRecord(float(time_s), int(epoch), float(tau_s))
        self._emit(record)
        return record

    def record_event(self, event: object) -> EventRecord:
        """Append a simulation event (EventLog subscription callback).

        Accepts any timestamped event dataclass
        (:class:`repro.sim.events.Event` subclasses); serialized generically
        so the obs layer stays free of upward dependencies.
        """
        record = event_to_record(event)
        self._emit(record)
        return record

    def flush(self) -> None:
        """Push buffered output to stable storage (no-op for the in-memory
        recorder; streaming sinks override)."""

    def close(self) -> None:
        """Release any held resources (no-op for the in-memory recorder)."""

    # -- views --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecorder):
            return NotImplemented
        return self.records == other.records

    def intervals(self) -> List[IntervalRecord]:
        """All interval records, in time order."""
        return [r for r in self.records if isinstance(r, IntervalRecord)]

    def epochs(self) -> List[EpochRecord]:
        """All rotation-epoch boundary records."""
        return [r for r in self.records if isinstance(r, EpochRecord)]

    def events(self, event: str = "") -> List[EventRecord]:
        """All event records, optionally filtered by event class name."""
        return [
            r
            for r in self.records
            if isinstance(r, EventRecord) and (not event or r.event == event)
        ]

    # -- JSONL serialization -------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per record, one record per line."""
        lines = [record_to_json_line(record) for record in self.records]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: PathLike) -> None:
        """Write the trace to ``path`` in JSON Lines form, atomically.

        The content goes to a temporary file in the same directory which is
        then ``os.replace``-d over ``path``, so a crashed writer never
        leaves a truncated trace behind.
        """
        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_jsonl())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`to_jsonl` output (lossless)."""
        recorder = cls()
        for line_no, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"trace JSONL line {line_no}: {exc}") from exc
            recorder.records.append(_record_from_dict(payload, line_no))
        return recorder

    @classmethod
    def read_jsonl(cls, path: PathLike) -> "TraceRecorder":
        """Read a trace written by :meth:`write_jsonl`."""
        return cls.from_jsonl(Path(path).read_text())


def _record_from_dict(payload: Dict[str, object], line_no: int) -> TraceRecord:
    kind = payload.pop("kind", None)
    if kind == "interval":
        return IntervalRecord(
            time_s=float(payload["time_s"]),
            dt_s=float(payload["dt_s"]),
            placements={t: int(c) for t, c in payload["placements"].items()},
            power_w=tuple(payload["power_w"]),
            temps_c=tuple(payload["temps_c"]),
            frequencies_hz=tuple(payload["frequencies_hz"]),
            dtm_throttled=tuple(payload.get("dtm_throttled", ())),
        )
    if kind == "epoch":
        return EpochRecord(
            time_s=float(payload["time_s"]),
            epoch=int(payload["epoch"]),
            tau_s=float(payload["tau_s"]),
        )
    if kind == "event":
        return EventRecord(
            time_s=float(payload["time_s"]),
            event=str(payload["event"]),
            data=dict(payload.get("data", {})),
        )
    raise ValueError(f"trace JSONL line {line_no}: unknown record kind {kind!r}")

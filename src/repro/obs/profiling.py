"""Lightweight wall-clock profiling hooks for engine phases.

A :class:`PhaseProfiler` accumulates, per named phase (``"scheduler.decide"``,
``"thermal.step"``, ``"power_map.build"``, ...), the call count and the
total/min/max wall-clock time.  It is built for hot loops:

- **disabled** (the default, ``SystemConfig.obs.profiling = False``):
  :meth:`begin` / :meth:`end` return immediately without recording anything
  — a disabled profiler holds zero records, and the engine skips the hooks
  entirely when no profiler is attached;
- **enabled**: one ``perf_counter`` call on each side of the phase.

Use :meth:`time` as a context manager for coarse, non-hot-loop sections.
The per-run summary renders through
:func:`repro.experiments.reporting.render_profile_table`.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass
class PhaseStat:
    """Accumulated wall-clock statistics of one profiled phase."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        """Fold one measured duration into the statistics."""
        self.count += 1
        self.total_s += elapsed_s
        self.min_s = min(self.min_s, elapsed_s)
        self.max_s = max(self.max_s, elapsed_s)

    @property
    def mean_s(self) -> float:
        """Average duration per call (0.0 when never called)."""
        return self.total_s / self.count if self.count else 0.0


class PhaseProfiler:
    """Accumulate wall-clock time per named phase; no-op when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: Dict[str, PhaseStat] = {}

    # -- hot-loop hooks ------------------------------------------------------

    def begin(self, phase: str) -> float:
        """Start timing ``phase``; returns the token to pass to :meth:`end`."""
        if not self.enabled:
            return 0.0
        return _time.perf_counter()

    def end(self, phase: str, token: float) -> None:
        """Stop timing ``phase`` started with :meth:`begin`."""
        if not self.enabled:
            return
        elapsed = _time.perf_counter() - token
        stat = self.records.get(phase)
        if stat is None:
            stat = self.records[phase] = PhaseStat()
        stat.add(elapsed)

    @contextmanager
    def time(self, phase: str) -> Iterator[None]:
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        token = self.begin(phase)
        try:
            yield
        finally:
            self.end(phase, token)

    # -- results -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict per-phase summary (sorted by total time, descending)."""
        ordered = sorted(
            self.records.items(), key=lambda kv: -kv[1].total_s
        )
        return {
            phase: {
                "count": float(stat.count),
                "total_s": stat.total_s,
                "mean_s": stat.mean_s,
                "min_s": stat.min_s if stat.count else 0.0,
                "max_s": stat.max_s,
            }
            for phase, stat in ordered
        }

    def render(self) -> str:
        """The per-run summary as an aligned plain-text table."""
        from ..experiments.reporting import render_profile_table

        return render_profile_table(self.summary())

"""Request-scoped span tracing: trace/span ids, context propagation, JSONL.

A :class:`SpanTracer` is the serving stack's answer to "where did this
request spend its time?".  It records :class:`SpanRecord`\\ s — one per
traced operation, carrying ``trace_id``/``span_id``/``parent_id``,
monotonic-clock start and duration, a status, free-form attributes and
*links* to other spans (the micro-batcher's flush span links back to
every request span whose candidates it drained) — into a bounded
in-memory ring buffer, optionally streaming each finished span to a
JSONL sink following the :class:`~repro.obs.sink.JsonlTraceSink`
conventions (one ``{"kind": "span", ...}`` object per line, key-sorted).

Design constraints, in the spirit of the rest of ``repro.obs``:

- **off by default, free when off** — a disabled tracer's
  :meth:`SpanTracer.span` is a no-op context manager that touches neither
  the ring buffer nor the ambient context, so untraced serving is
  byte-identical to the seed behaviour;
- **deterministic identity** — trace and span ids come from monotonic
  counters (no wall clock, no RNG), so two identical request tapes
  produce identical span topologies; only the measured durations differ
  (the module is held to the ``repro.lint`` determinism rules);
- **asyncio-correct propagation** — the ambient "current span" lives in a
  :class:`contextvars.ContextVar`, which asyncio snapshots per task, so
  concurrent requests interleaving on one event loop each see their own
  span stack.  Callbacks scheduled with ``loop.call_soon`` *inherit* the
  scheduling task's context — a span that must not be parented into an
  arbitrary request (the batch flush) passes ``root=True``.

The matching analytics live next door: quantiles come from
:meth:`repro.obs.metrics.Histogram.quantile`, orphan detection from
:class:`repro.obs.detect.SpanOrphanDetector`, the waterfall renderer is
:func:`repro.obs.export.trace_waterfall_html`, and ``python -m repro.obs
spans`` summarizes saved span files.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    ContextManager,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

PathLike = Union[str, Path]

__all__ = [
    "SpanRecord",
    "SpanTracer",
    "read_spans_jsonl",
    "span_to_json_line",
    "spans_from_jsonl",
    "spans_to_jsonl",
]

#: Ambient (trace_id, span_id) of the innermost active span, per context.
#: Module-level so nested tracer calls compose; asyncio gives every task
#: its own snapshot of this variable.
_CURRENT: ContextVar[Optional[Tuple[int, int]]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Default ring-buffer capacity (finished spans retained in memory).
DEFAULT_CAPACITY = 4096

#: Streamed spans between explicit sink flushes (JsonlTraceSink convention).
_FLUSH_EVERY = 256


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: identity, timing, status, attributes, links."""

    trace_id: int
    span_id: int
    #: parent span within the same trace; ``None`` for root spans.
    parent_id: Optional[int]
    name: str
    #: monotonic-clock start (``time.perf_counter`` domain, comparable
    #: only within one process run).
    start_s: float
    duration_s: float
    status: str = "ok"
    #: free-form JSON-serializable annotations.
    attrs: Dict[str, object] = field(default_factory=dict)
    #: span ids this span is causally linked to (e.g. a batch flush span
    #: links every request span it served); not parent/child edges.
    links: Tuple[int, ...] = ()

    @property
    def end_s(self) -> float:
        """Monotonic-clock end of the span."""
        return self.start_s + self.duration_s


def span_to_json_line(record: SpanRecord) -> str:
    """One span as its canonical JSONL line (no trailing newline)."""
    payload = {"kind": "span", **vars(record)}
    return json.dumps(payload, sort_keys=True)


def _span_from_dict(payload: Dict[str, object], line_no: int) -> SpanRecord:
    if payload.pop("kind", None) != "span":
        raise ValueError(f"span JSONL line {line_no}: not a span record")
    parent = payload.get("parent_id")
    try:
        return SpanRecord(
            trace_id=int(payload["trace_id"]),
            span_id=int(payload["span_id"]),
            parent_id=None if parent is None else int(parent),
            name=str(payload["name"]),
            start_s=float(payload["start_s"]),
            duration_s=float(payload["duration_s"]),
            status=str(payload.get("status", "ok")),
            attrs=dict(payload.get("attrs", {})),
            links=tuple(int(s) for s in payload.get("links", ())),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"span JSONL line {line_no}: malformed span record ({exc})"
        ) from exc


def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    """Spans as JSON Lines text (lossless round-trip)."""
    lines = [span_to_json_line(span) for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> List[SpanRecord]:
    """Rebuild span records from :func:`spans_to_jsonl` output."""
    spans: List[SpanRecord] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"span JSONL line {line_no}: {exc}") from exc
        spans.append(_span_from_dict(payload, line_no))
    return spans


def read_spans_jsonl(path: PathLike) -> List[SpanRecord]:
    """Read a span file written by :meth:`SpanTracer.write_jsonl`."""
    return spans_from_jsonl(Path(path).read_text())


class _ActiveSpan:
    """Handle yielded by :meth:`SpanTracer.span` while the span is open."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs", "links")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, object],
        links: Tuple[int, ...],
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.links = links

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)

    def add_link(self, span_id: int) -> None:
        """Causally link another span (order preserved, duplicates kept)."""
        self.links = self.links + (int(span_id),)


class _NoopSpan:
    """The handle a disabled tracer yields: every operation is free.

    It is its own (re-entrant, shared) context manager so the disabled
    fast path costs one ``enabled`` check and a constant return — no
    generator or frame is created per call.
    """

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    name = ""

    def annotate(self, **attrs: object) -> None:
        """Discard attributes (tracer disabled)."""

    def add_link(self, span_id: int) -> None:
        """Discard the link (tracer disabled)."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class SpanTracer:
    """Bounded in-memory span collector with optional JSONL streaming.

    ``enabled=False`` (the default) makes every method a cheap no-op:
    no ids are drawn, no context is touched, nothing is stored.
    """

    def __init__(
        self,
        enabled: bool = False,
        capacity: int = DEFAULT_CAPACITY,
        sink_path: Optional[PathLike] = None,
    ):
        if capacity < 1:
            raise ValueError("span ring-buffer capacity must be at least 1")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        #: finished spans, oldest evicted first once ``capacity`` is hit.
        self.records: Deque[SpanRecord] = deque(maxlen=self.capacity)
        #: spans evicted from the ring buffer (they may still be on disk).
        self.dropped = 0
        #: spans finished over the tracer's lifetime (ring + evicted).
        self.finished = 0
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._sink_path = Path(sink_path) if sink_path is not None else None
        self._handle = (
            open(self._sink_path, "w") if self._sink_path is not None else None
        )
        self._written = 0

    # -- recording ----------------------------------------------------------

    def span(
        self,
        name: str,
        root: bool = False,
        links: Sequence[int] = (),
        **attrs: object,
    ) -> ContextManager[Union[_ActiveSpan, _NoopSpan]]:
        """Open a span around a ``with`` block.

        The new span becomes the ambient parent for anything opened inside
        the block (also across ``await``).  ``root=True`` forces a fresh
        trace even when an ambient span exists — required for work whose
        scheduling context belongs to an unrelated request, like the
        micro-batcher's flush callback.  An exception escaping the block
        marks the span ``error:<ExceptionName>`` and propagates.

        When the tracer is disabled this returns a shared no-op context
        manager without allocating anything (the "free when off" gate in
        ``benchmarks/test_obs_overhead.py``).
        """
        if not self.enabled:
            return _NOOP_SPAN
        return self._record_span(name, root, links, attrs)

    @contextmanager
    def _record_span(
        self,
        name: str,
        root: bool,
        links: Sequence[int],
        attrs: Dict[str, object],
    ) -> Iterator[_ActiveSpan]:
        parent = _CURRENT.get()
        if root or parent is None:
            trace_id = next(self._trace_ids)
            parent_id: Optional[int] = None
        else:
            trace_id, parent_id = parent
        span_id = next(self._span_ids)
        handle = _ActiveSpan(
            trace_id, span_id, parent_id, name, dict(attrs),
            tuple(int(s) for s in links),
        )
        token = _CURRENT.set((trace_id, span_id))
        status = "ok"
        start = time.perf_counter()
        try:
            yield handle
        except BaseException as exc:
            status = f"error:{type(exc).__name__}"
            raise
        finally:
            duration = time.perf_counter() - start
            _CURRENT.reset(token)
            self._store(
                SpanRecord(
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_id=parent_id,
                    name=name,
                    start_s=start,
                    duration_s=duration,
                    status=status,
                    attrs=handle.attrs,
                    links=handle.links,
                )
            )

    def current_span_id(self) -> Optional[int]:
        """Span id of the ambient span (``None`` when disabled or idle)."""
        if not self.enabled:
            return None
        context = _CURRENT.get()
        return context[1] if context is not None else None

    def current_trace_id(self) -> Optional[int]:
        """Trace id of the ambient span (``None`` when disabled or idle)."""
        if not self.enabled:
            return None
        context = _CURRENT.get()
        return context[0] if context is not None else None

    def record_phases(
        self, summary: Mapping[str, Mapping[str, float]]
    ) -> None:
        """Attach a :meth:`~repro.obs.profiling.PhaseProfiler.summary` as
        child spans of the ambient span.

        Each profiled phase becomes one synthetic span named
        ``phase.<name>`` whose duration is the phase's *total* wall time
        and whose attributes carry the call count and mean; the spans are
        back-dated so they end "now" inside their parent.  No-op when the
        tracer is disabled or no span is ambient.
        """
        if not self.enabled:
            return
        context = _CURRENT.get()
        if context is None:
            return
        trace_id, parent_id = context
        now = time.perf_counter()
        for phase, stats in summary.items():
            total_s = float(stats.get("total_s", 0.0))
            self._store(
                SpanRecord(
                    trace_id=trace_id,
                    span_id=next(self._span_ids),
                    parent_id=parent_id,
                    name=f"phase.{phase}",
                    start_s=now - total_s,
                    duration_s=total_s,
                    attrs={
                        "count": float(stats.get("count", 0.0)),
                        "mean_s": float(stats.get("mean_s", 0.0)),
                    },
                )
            )

    def _store(self, record: SpanRecord) -> None:
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(record)
        self.finished += 1
        if self._handle is not None:
            self._handle.write(span_to_json_line(record) + "\n")
            self._written += 1
            if self._written % _FLUSH_EVERY == 0:
                self._handle.flush()

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records)

    def spans(self, name: str = "") -> List[SpanRecord]:
        """Buffered spans in finish order, optionally filtered by name."""
        return [r for r in self.records if not name or r.name == name]

    def traces(self) -> Dict[int, List[SpanRecord]]:
        """Buffered spans grouped by trace id (insertion-ordered)."""
        grouped: Dict[int, List[SpanRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.trace_id, []).append(record)
        return grouped

    def stats(self) -> Dict[str, float]:
        """Flat counters for the metrics registry (``serve.spans.*``)."""
        return {
            "spans.enabled": float(self.enabled),
            "spans.buffered": float(len(self.records)),
            "spans.finished": float(self.finished),
            "spans.dropped": float(self.dropped),
        }

    def clear(self) -> None:
        """Drop buffered spans (counters keep running)."""
        self.records.clear()

    # -- JSONL sink ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """The buffered spans as JSON Lines text."""
        return spans_to_jsonl(self.records)

    def write_jsonl(self, path: PathLike) -> None:
        """Write the buffered spans to ``path`` atomically
        (mkstemp + ``os.replace``, like ``TraceRecorder.write_jsonl``)."""
        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_jsonl())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def flush(self) -> None:
        """Push streamed lines to the OS (no-op without a sink)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the streaming sink (ring buffer stays usable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SpanTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"SpanTracer({state}, {len(self.records)}/{self.capacity} "
            f"buffered, {self.dropped} dropped)"
        )

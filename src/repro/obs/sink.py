"""Streaming JSONL trace sink: append records to disk as they happen.

A :class:`JsonlTraceSink` is a drop-in :class:`~repro.obs.trace.TraceRecorder`
that writes each record to a JSON Lines file the moment it is recorded,
instead of buffering the whole run in memory — the difference between a
bounded-memory production run and an OOM on a long campaign.  The engine
needs no special handling: it talks to the same ``record_interval`` /
``record_epoch`` / ``record_event`` surface and calls ``flush()`` at run
end; the file is finalized by ``close()`` (or the context manager).

By default nothing is kept in memory (``len(sink) == 0``); pass
``buffer_in_memory=True`` to additionally retain the records for immediate
in-process analysis.  The file on disk is always readable back with
:meth:`TraceRecorder.read_jsonl` — also mid-run after a ``flush()``, and
(up to the last completed line) after a crash.

Enable through configuration with
``SystemConfig.with_observability(trace_path="run.jsonl")``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .trace import TraceRecord, TraceRecorder, record_to_json_line

PathLike = Union[str, Path]


class JsonlTraceSink(TraceRecorder):
    """A trace recorder that streams records to a JSONL file."""

    def __init__(
        self,
        path: PathLike,
        buffer_in_memory: bool = False,
        flush_every: int = 256,
    ) -> None:
        super().__init__()
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.path = Path(path)
        self.buffer_in_memory = buffer_in_memory
        self.flush_every = flush_every
        self._written = 0
        self._handle = open(self.path, "w")

    # -- recording ----------------------------------------------------------

    def _emit(self, record: TraceRecord) -> None:
        if self._handle is None:
            raise ValueError(f"trace sink {self.path} is closed")
        self._handle.write(record_to_json_line(record) + "\n")
        self._written += 1
        if self._written % self.flush_every == 0:
            self._handle.flush()
        if self.buffer_in_memory:
            self.records.append(record)

    def __len__(self) -> int:
        """Records written to the file (buffered or not)."""
        return self._written

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._handle is None

    def flush(self) -> None:
        """Push buffered lines to the OS (safe to call after close)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the file; further recording raises."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def reload(self) -> TraceRecorder:
        """Read the on-disk trace back as an in-memory recorder."""
        self.flush()
        return TraceRecorder.read_jsonl(self.path)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"JsonlTraceSink({str(self.path)!r}, {self._written} records, "
            f"{state})"
        )

"""Per-tenant latency SLOs: targets, error budgets, burn rates.

An :class:`SloTarget` states the service-level objective for one tenant:
"at most ``error_budget`` of requests may exceed ``latency_s``".  An
:class:`SloTracker` consumes ``(time, latency)`` observations and
maintains

- the cumulative **error-budget consumption**: the fraction of requests
  that breached the latency target, normalized by the budget — ``1.0``
  means the budget is exactly spent, above it the SLO is violated;
- the short-horizon **burn rate** over a sliding window: how fast the
  budget is being consumed *right now* (``1.0`` = exactly at budget
  pace; ``2.0`` = burning twice as fast as the SLO allows), the quantity
  paging policies alert on long before the cumulative budget runs out.

Time is injected by the caller (the serve layer passes the event loop's
monotonic clock), so the tracker itself never reads a clock and replays
deterministically from a recorded tape.  The matching detector —
:class:`repro.obs.detect.SloLatencyViolationDetector` — fires exactly
once per budget-exhaustion episode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

__all__ = ["SloTarget", "SloTracker"]

#: Default sliding window for burn-rate estimation [s].
DEFAULT_BURN_WINDOW_S = 60.0


@dataclass(frozen=True)
class SloTarget:
    """One tenant's latency objective."""

    #: per-request latency threshold [s]; above it a request is "slow".
    latency_s: float
    #: allowed fraction of slow requests (e.g. 0.01 = 99% must be fast).
    error_budget: float = 0.01

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError("SLO latency target must be positive")
        if not 0.0 < self.error_budget <= 1.0:
            raise ValueError("error budget must be in (0, 1]")


class SloTracker:
    """Streaming error-budget and burn-rate accounting for one target."""

    def __init__(
        self,
        target: SloTarget,
        burn_window_s: float = DEFAULT_BURN_WINDOW_S,
    ):
        if burn_window_s <= 0:
            raise ValueError("burn window must be positive")
        self.target = target
        self.burn_window_s = float(burn_window_s)
        self.total = 0
        self.slow = 0
        #: (time_s, was_slow) samples inside the burn window.
        self._window: Deque[Tuple[float, bool]] = deque()

    def record(self, time_s: float, latency_s: float) -> bool:
        """Fold one request in; returns whether it breached the target."""
        is_slow = float(latency_s) > self.target.latency_s
        self.total += 1
        if is_slow:
            self.slow += 1
        self._window.append((float(time_s), is_slow))
        self._trim(float(time_s))
        return is_slow

    def _trim(self, now_s: float) -> None:
        cutoff = now_s - self.burn_window_s
        while self._window and self._window[0][0] < cutoff:
            self._window.popleft()

    @property
    def violation_fraction(self) -> float:
        """Cumulative fraction of requests over the latency target."""
        return self.slow / self.total if self.total else 0.0

    @property
    def budget_used(self) -> float:
        """Cumulative budget consumption; ``>= 1.0`` means violated."""
        return self.violation_fraction / self.target.error_budget

    @property
    def exhausted(self) -> bool:
        """True once the cumulative error budget is spent."""
        return self.total > 0 and self.budget_used >= 1.0

    def burn_rate(self, now_s: float) -> float:
        """Budget-consumption speed over the sliding window.

        ``1.0`` means the window's slow fraction equals the budget
        exactly; sustained values above 1 exhaust the budget.
        """
        self._trim(float(now_s))
        if not self._window:
            return 0.0
        slow = sum(1 for _, is_slow in self._window if is_slow)
        return (slow / len(self._window)) / self.target.error_budget

    def snapshot(self) -> Dict[str, float]:
        """Flat view for metrics/JSON exposure."""
        return {
            "slo.latency_target_s": self.target.latency_s,
            "slo.error_budget": self.target.error_budget,
            "slo.requests": float(self.total),
            "slo.slow_requests": float(self.slow),
            "slo.budget_used": self.budget_used,
        }

    def __repr__(self) -> str:
        return (
            f"SloTracker(<= {self.target.latency_s * 1e3:.1f} ms, "
            f"budget {self.target.error_budget:.2%}, "
            f"{self.slow}/{self.total} slow, "
            f"used {self.budget_used:.2f})"
        )

"""Architecture substrate: mesh NoC, AMD rings, S-NUCA LLC, migration costs.

Implements the paper's Section III-A architecture model: a grid-based
XY-routed NoC of homogeneous cores, each holding one bank of the physically
distributed logically shared LLC, with performance heterogeneity governed by
each core's Average Manhattan Distance.
"""

from .amd import AmdRings, amd_vector, average_manhattan_distance
from .cache import MigrationCostModel
from .noc import Noc
from .snuca import SnucaCache
from .topology import Mesh

__all__ = [
    "AmdRings",
    "Mesh",
    "MigrationCostModel",
    "Noc",
    "SnucaCache",
    "amd_vector",
    "average_manhattan_distance",
]

"""S-NUCA last-level cache model.

S-NUCA statically interleaves the physical address space across all LLC
banks (one bank per core, Table I: 128 KB each).  Two consequences drive the
paper:

1. **Performance heterogeneity** — a core's average LLC access latency is
   proportional to its AMD, because accesses spread uniformly over all
   banks (Section III-A; Pathania & Henkel, DATE 2018).
2. **Cheap migration** — the LLC needs no flush on migration; only the
   private L1 state moves (Section I).

This module computes per-core average LLC latency from the AMD vector and
provides the static line-to-bank mapping for completeness.
"""

from __future__ import annotations

import numpy as np

from ..config import CacheConfig, NocConfig
from .amd import AmdRings, amd_vector
from .noc import Noc
from .topology import Mesh


class SnucaCache:
    """Distributed shared LLC with static (S-NUCA) bank interleaving."""

    def __init__(
        self,
        mesh: Mesh,
        cache_config: CacheConfig = None,
        noc_config: NocConfig = None,
    ):
        self.mesh = mesh
        self.cache = cache_config if cache_config is not None else CacheConfig()
        self.noc = Noc(mesh, noc_config)
        self._amd = amd_vector(mesh)

    # -- static mapping --------------------------------------------------------

    def bank_of_address(self, address: int) -> int:
        """The LLC bank statically responsible for ``address``.

        Line-granular interleaving: consecutive cache lines map to
        consecutive banks.  Static means the lookup needs no directory —
        the property that makes S-NUCA migrations cheap.
        """
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address // self.cache.block_size_bytes
        return line % self.mesh.n_cores

    # -- latency ---------------------------------------------------------------

    def access_latency_s(self, core: int, bank: int) -> float:
        """Latency of one LLC access from ``core`` to ``bank``."""
        line_bits = self.cache.block_size_bytes * 8
        noc = self.noc.cache_line_round_trip_s(core, bank, line_bits)
        return noc + self.noc.config.bank_access_latency_s

    def average_access_latency_s(self, core: int) -> float:
        """AMD-weighted mean LLC access latency seen by ``core``.

        With uniformly interleaved accesses the mean NoC distance is exactly
        the core's AMD, so the mean latency is affine in AMD — the paper's
        performance-heterogeneity model.
        """
        line_bits = self.cache.block_size_bytes * 8
        extra_flits = max(0, -(-line_bits // self.noc.config.link_width_bits) - 1)
        per_hop = self.noc.config.hop_latency_s
        round_trip = self.noc.config.round_trip_factor * self._amd[core] * per_hop
        payload = extra_flits * per_hop
        return round_trip + payload + self.noc.config.bank_access_latency_s

    def latency_vector_s(self) -> np.ndarray:
        """Average LLC access latency of every core, shape ``(n_cores,)``."""
        return np.array(
            [self.average_access_latency_s(c) for c in range(self.mesh.n_cores)]
        )

    def ring_latency_s(self, rings: AmdRings, ring_index: int) -> float:
        """Average LLC latency of the cores in one AMD ring.

        All cores in a ring share one AMD, hence one latency — the property
        that makes intra-ring rotation performance-neutral.
        """
        cores = rings.ring(ring_index)
        return self.average_access_latency_s(cores[0])

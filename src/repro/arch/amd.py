"""Average Manhattan Distance (AMD) and concentric AMD rings (Fig. 3).

On an S-NUCA many-core the LLC is interleaved across all cores' banks, so a
core's average LLC access latency is proportional to its **Average Manhattan
Distance** to every bank, i.e. to every core (Pathania & Henkel, DATE 2018).
AMD is minimal at the mesh centre and grows outward; cores sharing an AMD
value form concentric "rings" that are performance- and thermal-wise
homogeneous (paper Section V, Fig. 3).  HotPotato rotates threads *within*
one ring, so both per-thread performance and the ring's thermal picture are
invariant under the rotation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .topology import Mesh

#: Two AMD values closer than this are considered the same ring.
_AMD_TOLERANCE = 1e-9


def average_manhattan_distance(mesh: Mesh, core_id: int) -> float:
    """Mean Manhattan distance from ``core_id`` to every core (incl. itself).

    The self-distance of zero is included because the local LLC bank is one
    of the banks accessed — matching the S-NUCA characterization the paper
    builds on.
    """
    total = sum(
        mesh.manhattan_distance(core_id, other) for other in range(mesh.n_cores)
    )
    return total / mesh.n_cores


def amd_vector(mesh: Mesh) -> np.ndarray:
    """AMD of every core, shape ``(n_cores,)``."""
    rows = np.arange(mesh.height)
    cols = np.arange(mesh.width)
    # sum over all (r2, c2) of |r - r2| + |c - c2| decomposes per axis
    row_sums = np.array([np.sum(np.abs(rows - r)) for r in rows])  # per row
    col_sums = np.array([np.sum(np.abs(cols - c)) for c in cols])  # per col
    amd = (
        row_sums[:, None] * mesh.width + col_sums[None, :] * mesh.height
    ) / mesh.n_cores
    return amd.reshape(mesh.n_cores)


class AmdRings:
    """The concentric AMD ring decomposition of a mesh.

    Ring 0 has the lowest AMD (best performance, worst thermals); the last
    ring has the highest AMD (worst performance, best thermals) — the
    monotone trade-off HotPotato's greedy heuristic walks.
    """

    def __init__(self, mesh: Mesh):
        self.mesh = mesh
        self.amd = amd_vector(mesh)
        order = np.argsort(self.amd, kind="stable")
        rings: List[List[int]] = []
        values: List[float] = []
        for core in order:
            value = float(self.amd[core])
            if values and abs(value - values[-1]) < _AMD_TOLERANCE:
                rings[-1].append(int(core))
            else:
                rings.append([int(core)])
                values.append(value)
        self._rings = [tuple(sorted(ring)) for ring in rings]
        self._values = values
        self._ring_of: Dict[int, int] = {}
        for index, ring in enumerate(self._rings):
            for core in ring:
                self._ring_of[core] = index

    # -- queries -------------------------------------------------------------

    @property
    def n_rings(self) -> int:
        """Number of distinct AMD values."""
        return len(self._rings)

    def ring(self, index: int) -> Sequence[int]:
        """Cores of ring ``index`` (ascending core id)."""
        return self._rings[index]

    def rings(self) -> Sequence[Sequence[int]]:
        """All rings, lowest AMD first."""
        return tuple(self._rings)

    def ring_value(self, index: int) -> float:
        """The AMD shared by the cores of ring ``index``."""
        return self._values[index]

    def ring_of(self, core_id: int) -> int:
        """Ring index of a core."""
        return self._ring_of[core_id]

    def capacity(self, index: int) -> int:
        """Number of cores in ring ``index``."""
        return len(self._rings[index])

    def render_ascii(self) -> str:
        """Grid rendering with each core labelled by its ring index."""
        lines = []
        for row in range(self.mesh.height):
            cells = []
            for col in range(self.mesh.width):
                core = self.mesh.core_at(row, col)
                cells.append(f"{self.ring_of(core):2d}")
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        sizes = ", ".join(str(self.capacity(i)) for i in range(self.n_rings))
        return f"AmdRings({self.mesh!r}, {self.n_rings} rings: [{sizes}])"

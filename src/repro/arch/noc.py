"""NoC latency/bandwidth model (Table I: 1.5 ns/hop, 256-bit links).

A contention-free analytical model: message latency is per-hop router/link
latency times hop count plus payload serialization over the link width.
Interval simulation at millisecond granularity does not resolve individual
packets, so the LLC latency model consumes the *average* traversal cost.
"""

from __future__ import annotations

from ..config import NocConfig
from .topology import Mesh


class Noc:
    """Analytical latency model for an XY-routed mesh NoC."""

    def __init__(self, mesh: Mesh, config: NocConfig = None):
        self.mesh = mesh
        self.config = config if config is not None else NocConfig()

    def traversal_latency_s(self, src: int, dst: int, payload_bits: int = 0) -> float:
        """One-way latency of a message from ``src`` to ``dst``.

        ``hops * hop_latency`` plus payload serialization (flits beyond the
        head flit add one link cycle each).
        """
        hops = self.mesh.manhattan_distance(src, dst)
        header = hops * self.config.hop_latency_s
        if payload_bits <= 0:
            return header
        extra_flits = max(0, -(-payload_bits // self.config.link_width_bits) - 1)
        return header + extra_flits * self.config.hop_latency_s

    def cache_line_round_trip_s(self, core: int, bank: int, line_bits: int) -> float:
        """Request/response round trip for one cache-line fetch.

        Request is header-only; the response carries the line payload.  The
        bank access time itself is added by the S-NUCA model.
        """
        request = self.traversal_latency_s(core, bank)
        response = self.traversal_latency_s(bank, core, payload_bits=line_bits)
        return request + response

    def average_hop_latency_s(self, amd_hops: float) -> float:
        """Average one-way NoC latency for a core with the given AMD."""
        return amd_hops * self.config.hop_latency_s

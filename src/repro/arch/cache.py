"""Private-cache migration cost model.

When a thread migrates on an S-NUCA many-core only its private L1 state is
lost: dirty lines are flushed to the (shared, stationary) LLC and the
working set is demand-refilled at the destination (paper Section I).  The
penalty therefore scales with the live private-cache footprint and the
destination core's average LLC latency.

The flush of dirty lines overlaps with the migration itself (writebacks are
posted), so the dominant term is the serialized refill of live lines, plus
pipeline/TLB restart effects folded into ``cold_start_factor``.  The factor
is calibrated so that a 0.5 ms synchronous rotation costs a compute-bound
thread ~8 % — the rotation penalty the paper reports for the motivational
example (Section I: 74 ms vs 68 ms response time).
"""

from __future__ import annotations

from .. import units
from ..config import CacheConfig, NocConfig
from .snuca import SnucaCache
from .topology import Mesh


class MigrationCostModel:
    """Per-migration time penalty for a thread, by destination core."""

    #: Multiplier on the raw serialized-refill time accounting for dependent
    #: miss chains and replay effects (calibration constant, see module
    #: docstring).
    cold_start_factor: float = 3.0
    #: Fixed per-migration cost [s]: OS context hand-off, pipeline drain and
    #: restart, TLB shootdown.  Independent of the destination's AMD, which
    #: keeps the migration-cost gradient across rings gentle — the S-NUCA
    #: property the paper builds on.
    restart_overhead_s: float = units.us(25.0)

    def __init__(
        self,
        mesh: Mesh,
        cache_config: CacheConfig = None,
        noc_config: NocConfig = None,
    ):
        self.mesh = mesh
        self.cache = cache_config if cache_config is not None else CacheConfig()
        self.snuca = SnucaCache(mesh, self.cache, noc_config)

    def live_lines(self) -> int:
        """Private lines that must be re-fetched after a migration."""
        return int(self.cache.private_lines * self.cache.live_line_fraction)

    def dirty_lines(self) -> int:
        """Private lines that must be written back before restart."""
        return int(self.live_lines() * self.cache.dirty_line_fraction)

    def flush_time_s(self, src_core: int) -> float:
        """Time to post the dirty-line writebacks from the source core.

        Writebacks are pipelined into the NoC; the thread only waits for
        injection (one link serialization per line), not for completion.
        """
        line_bits = self.cache.block_size_bytes * 8
        flits = -(-line_bits // self.snuca.noc.config.link_width_bits)
        return self.dirty_lines() * flits * self.snuca.noc.config.hop_latency_s

    def refill_time_s(self, dst_core: int) -> float:
        """Serialized demand-refill cost at the destination core."""
        per_line = self.snuca.average_access_latency_s(dst_core)
        return self.live_lines() * per_line * self.cold_start_factor

    def migration_penalty_s(self, src_core: int, dst_core: int) -> float:
        """Total execution-time penalty of migrating ``src -> dst``.

        Migrating a thread onto the core it already occupies is free.
        """
        if src_core == dst_core:
            return 0.0
        return (
            self.restart_overhead_s
            + self.flush_time_s(src_core)
            + self.refill_time_s(dst_core)
        )

    def dvfs_transition_penalty_s(self) -> float:
        """Stall while a core re-locks its PLL after a frequency change.

        Small compared to a migration — the paper's observation that S-NUCA
        migrations are competitive with DVFS only holds if neither knob is
        free; typical PLL relock is a few microseconds.
        """
        return 2.0e-6

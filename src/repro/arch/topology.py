"""Mesh topology and XY routing.

The paper's platform is a grid-based NoC with XY (dimension-ordered) routing
connecting micro-architecturally homogeneous cores (Section III-A).  This
module provides the grid geometry queries — Manhattan distances, XY routes,
hop counts — that both the S-NUCA latency model and the AMD ring
decomposition build on.

Core ids are row-major, identical to :class:`repro.thermal.floorplan.Floorplan`.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx


class Mesh:
    """A ``width x height`` mesh NoC with XY routing."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be at least 1x1")
        self.width = width
        self.height = height

    @property
    def n_cores(self) -> int:
        """Number of routers/cores in the mesh."""
        return self.width * self.height

    def position(self, core_id: int) -> Tuple[int, int]:
        """Grid position ``(row, col)`` of a core."""
        if not (0 <= core_id < self.n_cores):
            raise IndexError(f"core {core_id} outside 0..{self.n_cores - 1}")
        return divmod(core_id, self.width)

    def core_at(self, row: int, col: int) -> int:
        """Core id at ``(row, col)``."""
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise IndexError(f"({row}, {col}) outside {self.height}x{self.width} grid")
        return row * self.width + col

    def manhattan_distance(self, a: int, b: int) -> int:
        """Hop count between cores ``a`` and ``b`` (XY routes are minimal)."""
        ra, ca = self.position(a)
        rb, cb = self.position(b)
        return abs(ra - rb) + abs(ca - cb)

    def xy_route(self, src: int, dst: int) -> List[int]:
        """The XY route from ``src`` to ``dst``, inclusive of both endpoints.

        Dimension-ordered: first traverse X (columns), then Y (rows) — the
        deadlock-free routing the paper's platform uses.
        """
        r_src, c_src = self.position(src)
        r_dst, c_dst = self.position(dst)
        route = [src]
        col = c_src
        step = 1 if c_dst > c_src else -1
        while col != c_dst:
            col += step
            route.append(self.core_at(r_src, col))
        row = r_src
        step = 1 if r_dst > r_src else -1
        while row != r_dst:
            row += step
            route.append(self.core_at(row, c_dst))
        return route

    def neighbors(self, core_id: int) -> List[int]:
        """Cores one hop away (N, S, W, E order)."""
        row, col = self.position(core_id)
        result = []
        if row > 0:
            result.append(self.core_at(row - 1, col))
        if row < self.height - 1:
            result.append(self.core_at(row + 1, col))
        if col > 0:
            result.append(self.core_at(row, col - 1))
        if col < self.width - 1:
            result.append(self.core_at(row, col + 1))
        return result

    def to_networkx(self) -> "nx.Graph":
        """The mesh as an undirected :mod:`networkx` graph (nodes = core ids)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_cores))
        for core in range(self.n_cores):
            for other in self.neighbors(core):
                graph.add_edge(core, other)
        return graph

    def center_cores(self) -> List[int]:
        """The 1, 2 or 4 most central cores (lowest maximum distance)."""
        rows = self._center_indices(self.height)
        cols = self._center_indices(self.width)
        return [self.core_at(r, c) for r in rows for c in cols]

    @staticmethod
    def _center_indices(extent: int) -> List[int]:
        if extent % 2 == 1:
            return [extent // 2]
        return [extent // 2 - 1, extent // 2]

    def __repr__(self) -> str:
        return f"Mesh({self.width}x{self.height})"

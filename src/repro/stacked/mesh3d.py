"""3D-stacked mesh topology (paper Section VII future work, CoMeT-style).

A 3D S-NUCA many-core stacks ``layers`` identical ``width x height`` core
meshes; vertical hops traverse TSVs.  Core ids are layer-major:
``core = layer * width * height + row * width + col``.

The 3D Manhattan distance weights vertical hops by ``tsv_hop_weight``
(TSVs are short — typically cheaper than a lateral hop), and the 3D AMD
generalizes the 2D definition: the mean weighted distance to every LLC
bank in the stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


class Mesh3D:
    """A ``width x height x layers`` stacked mesh with TSV links."""

    def __init__(
        self,
        width: int,
        height: int,
        layers: int,
        tsv_hop_weight: float = 0.5,
    ):
        if width < 1 or height < 1 or layers < 1:
            raise ValueError("mesh dimensions must be at least 1")
        if tsv_hop_weight <= 0:
            raise ValueError("TSV hop weight must be positive")
        self.width = width
        self.height = height
        self.layers = layers
        self.tsv_hop_weight = tsv_hop_weight

    @property
    def cores_per_layer(self) -> int:
        """Cores in one layer."""
        return self.width * self.height

    @property
    def n_cores(self) -> int:
        """Total cores in the stack."""
        return self.cores_per_layer * self.layers

    # -- indexing -------------------------------------------------------------

    def position(self, core_id: int) -> Tuple[int, int, int]:
        """``(layer, row, col)`` of a core."""
        if not (0 <= core_id < self.n_cores):
            raise IndexError(f"core {core_id} outside 0..{self.n_cores - 1}")
        layer, rest = divmod(core_id, self.cores_per_layer)
        row, col = divmod(rest, self.width)
        return layer, row, col

    def core_at(self, layer: int, row: int, col: int) -> int:
        """Core id at ``(layer, row, col)``."""
        if not (
            0 <= layer < self.layers
            and 0 <= row < self.height
            and 0 <= col < self.width
        ):
            raise IndexError(f"({layer}, {row}, {col}) outside the stack")
        return layer * self.cores_per_layer + row * self.width + col

    def layer_of(self, core_id: int) -> int:
        """Layer index (0 = closest to the heat sink)."""
        return self.position(core_id)[0]

    def stacked_column(self, core_id: int) -> List[int]:
        """The cores vertically aligned with ``core_id``, all layers."""
        _, row, col = self.position(core_id)
        return [self.core_at(layer, row, col) for layer in range(self.layers)]

    # -- distances ------------------------------------------------------------

    def distance(self, a: int, b: int) -> float:
        """Weighted 3D Manhattan distance (TSV hops weighted)."""
        la, ra, ca = self.position(a)
        lb, rb, cb = self.position(b)
        lateral = abs(ra - rb) + abs(ca - cb)
        vertical = abs(la - lb) * self.tsv_hop_weight
        return lateral + vertical

    def neighbors(self, core_id: int) -> List[int]:
        """Cores one (lateral or vertical) hop away."""
        layer, row, col = self.position(core_id)
        result = []
        for dl, dr, dc in (
            (0, -1, 0),
            (0, 1, 0),
            (0, 0, -1),
            (0, 0, 1),
            (-1, 0, 0),
            (1, 0, 0),
        ):
            nl, nr, nc = layer + dl, row + dr, col + dc
            if 0 <= nl < self.layers and 0 <= nr < self.height and 0 <= nc < self.width:
                result.append(self.core_at(nl, nr, nc))
        return result

    def __repr__(self) -> str:
        return f"Mesh3D({self.width}x{self.height}x{self.layers})"


def amd3d_vector(mesh: Mesh3D) -> np.ndarray:
    """3D AMD of every core: mean weighted distance to every bank."""
    n = mesh.n_cores
    amd = np.empty(n)
    for core in range(n):
        amd[core] = (
            sum(mesh.distance(core, other) for other in range(n)) / n
        )
    return amd


class Amd3dRings:
    """Concentric 3D-AMD rings (the 2D decomposition generalized).

    In a stack, cores with equal 3D AMD can sit in *different layers* —
    performance-equivalent but **not** thermally equivalent (upper layers
    are farther from the sink).  :meth:`thermally_homogeneous` exposes
    whether each ring stays within one layer; HotPotato's 2D premise (one
    ring = one thermal class) holds only when it does.
    """

    _TOLERANCE = 1e-9

    def __init__(self, mesh: Mesh3D):
        self.mesh = mesh
        self.amd = amd3d_vector(mesh)
        order = np.argsort(self.amd, kind="stable")
        rings: List[List[int]] = []
        values: List[float] = []
        for core in order:
            value = float(self.amd[core])
            if values and abs(value - values[-1]) < self._TOLERANCE:
                rings[-1].append(int(core))
            else:
                rings.append([int(core)])
                values.append(value)
        self._rings = [tuple(sorted(r)) for r in rings]
        self._values = values

    @property
    def n_rings(self) -> int:
        """Number of distinct 3D-AMD values."""
        return len(self._rings)

    def ring(self, index: int) -> Sequence[int]:
        """Cores of ring ``index``."""
        return self._rings[index]

    def ring_value(self, index: int) -> float:
        """The 3D AMD shared by ring ``index``."""
        return self._values[index]

    def capacity(self, index: int) -> int:
        """Number of cores in ring ``index``."""
        return len(self._rings[index])

    def layers_of_ring(self, index: int) -> Tuple[int, ...]:
        """Distinct layers the ring's cores occupy."""
        return tuple(sorted({self.mesh.layer_of(c) for c in self._rings[index]}))

    def thermally_homogeneous(self, index: int) -> bool:
        """True when the ring stays within a single layer."""
        return len(self.layers_of_ring(index)) == 1

    def ring_layer_summary(self) -> Dict[int, Tuple[int, ...]]:
        """Ring index -> layers it spans (the 2D-premise diagnostic)."""
        return {i: self.layers_of_ring(i) for i in range(self.n_rings)}

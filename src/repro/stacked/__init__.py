"""3D-stacked S-NUCA extension (paper Section VII future work).

The analytic rotation machinery of Section IV only requires the Eq. (1)
model structure, which the stacked RC network preserves — so synchronous
rotation transfers to 3D unchanged, including *vertical* rotation through
a stacked column, which averages the layer gradient the same way 2D
rotation averages lateral hotspots.  See
:mod:`repro.experiments.stacked3d`.
"""

from .mesh3d import Amd3dRings, Mesh3D, amd3d_vector
from .rc_model3d import (
    StackedMaterialStack,
    StackedRCModel,
    build_rc_model_3d,
    default_stacked_stack,
)

__all__ = [
    "Amd3dRings",
    "Mesh3D",
    "StackedMaterialStack",
    "StackedRCModel",
    "amd3d_vector",
    "build_rc_model_3d",
    "default_stacked_stack",
]

"""RC thermal model of a 3D-stacked die (CoMeT-style compact model).

Extends the 2D network of :mod:`repro.thermal.rc_model` to ``L`` stacked
silicon layers: layer 0 sits on the TIM/spreader/sink path exactly as in
2D; each higher layer couples to the one below through a bonding layer
(underfill + micro-bumps/TSVs), which is comparatively resistive — the
classic 3D problem that upper layers run hotter for the same power.

Node layout for ``n`` cores per layer and ``L`` layers
(``N = L*n + n + 1``):

========================  ======================
0 .. L*n-1                silicon (layer-major)
L*n .. L*n + n - 1        spreader blocks
L*n + n                   heat sink
========================  ======================

The matrices keep the Eq. (1) structure (diagonal positive ``A``,
symmetric positive-definite ``B``), so the paper's entire analytic
machinery — MatEx, Eqs. 4–11, Algorithm 1 — applies to the stack
unchanged.  That substrate-independence is exactly what makes synchronous
rotation a candidate for 3D thermal management (the paper's future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import units
from ..thermal.floorplan import Floorplan
from ..thermal.rc_model import MaterialStack, RCThermalModel
from .mesh3d import Mesh3D


@dataclass(frozen=True)
class StackedMaterialStack(MaterialStack):
    """2D material stack plus the inter-layer bonding interface."""

    #: bonding layer (underfill + micro-bumps) thickness [m] / conductivity
    t_bond_m: float = units.um(20.0)
    k_bond: float = 1.5
    #: multiplier on the bond conductance contributed by TSVs (copper vias
    #: through the bond significantly help vertical heat flow)
    tsv_conductance_boost: float = 3.0


class StackedRCModel(RCThermalModel):
    """RC network of a stacked die; reuses all 2D query machinery.

    ``n_cores`` counts every core in the stack; :meth:`layer_slice`
    extracts one layer's temperatures.
    """

    def __init__(self, mesh3d: Mesh3D, *args, **kwargs):
        self.mesh3d = mesh3d
        super().__init__(*args, **kwargs)

    # RCThermalModel derives node counts from the floorplan (one spreader
    # per core) — the stack has L*n silicon nodes but only n spreader
    # blocks, so the overrides below re-derive the layout.

    @property
    def n_cores(self) -> int:  # all layers
        return self.mesh3d.n_cores

    @property
    def n_nodes(self) -> int:
        return self.mesh3d.n_cores + self.mesh3d.cores_per_layer + 1

    @property
    def sink_node(self) -> int:
        return self.n_nodes - 1

    def spreader_node(self, column: int) -> int:
        """Spreader block under stacked column ``column`` (0..n/layer-1)."""
        return self.mesh3d.n_cores + column

    def layer_slice(self, temps: np.ndarray, layer: int) -> np.ndarray:
        """Core temperatures of one layer."""
        per = self.mesh3d.cores_per_layer
        start = layer * per
        return np.asarray(temps)[..., start : start + per]


def build_rc_model_3d(
    mesh3d: Mesh3D,
    stack: Optional[StackedMaterialStack] = None,
    core_area_m2: float = units.mm2(0.81),
) -> StackedRCModel:
    """Assemble the stacked RC network."""
    if stack is None:
        stack = StackedMaterialStack()
    n_per_layer = mesh3d.cores_per_layer
    n_total = mesh3d.n_cores
    n_nodes = n_total + n_per_layer + 1
    sink = n_nodes - 1
    area = core_area_m2
    floorplan = Floorplan(mesh3d.width, mesh3d.height, core_area_m2)

    cond = np.zeros((n_nodes, n_nodes))

    def couple(i: int, j: int, g: float) -> None:
        cond[i, i] += g
        cond[j, j] += g
        cond[i, j] -= g
        cond[j, i] -= g

    # lateral silicon coupling within every layer
    g_si_lat = stack.lateral_scale * stack.k_si * stack.t_si_m
    for a, b in floorplan.lateral_pairs():
        for layer in range(mesh3d.layers):
            offset = layer * n_per_layer
            couple(offset + a, offset + b, g_si_lat)

    # lateral spreader coupling (single spreader under layer 0)
    g_sp_lat = stack.lateral_scale * stack.k_cu * stack.t_sp_m
    for a, b in floorplan.lateral_pairs():
        couple(n_total + a, n_total + b, g_sp_lat)

    # layer 0 -> spreader (same vertical path as the 2D model)
    r_vert = (
        stack.t_si_m / (2.0 * stack.k_si * area)
        + stack.t_tim_m / (stack.k_tim * area)
        + stack.t_sp_m / (2.0 * stack.k_cu * area)
    )
    g_vert = stack.vertical_scale / r_vert
    # spreader -> sink, plus the boundary overhang margin
    r_sp_sink = stack.t_sp_m / (2.0 * stack.k_cu * area) + (
        stack.r_sp_sink_km2_per_w / area
    )
    g_sp_sink = 1.0 / r_sp_sink
    g_margin_per_edge = stack.spreader_margin_factor * stack.k_cu * stack.t_sp_m
    for col in range(n_per_layer):
        couple(col, n_total + col, g_vert)  # layer-0 core -> spreader
        couple(n_total + col, sink, g_sp_sink)
        exposed = 4 - len(floorplan.neighbors(col))
        if exposed > 0:
            couple(n_total + col, sink, exposed * g_margin_per_edge)

    # inter-layer bonding: layer l core -> layer l-1 core (same column)
    r_bond = (
        stack.t_si_m / (2.0 * stack.k_si * area)
        + stack.t_bond_m / (stack.k_bond * area)
        + stack.t_si_m / (2.0 * stack.k_si * area)
    )
    g_bond = stack.tsv_conductance_boost / r_bond
    for layer in range(1, mesh3d.layers):
        for col in range(n_per_layer):
            upper = layer * n_per_layer + col
            lower = (layer - 1) * n_per_layer + col
            couple(upper, lower, g_bond)

    # sink -> ambient (area of one layer's footprint)
    die_area = n_per_layer * area
    g_amb = np.zeros(n_nodes)
    g_amb[sink] = 1.0 / stack.sink_resistance(die_area)
    cond[sink, sink] += g_amb[sink]

    cap = np.empty(n_nodes)
    cap[:n_total] = (
        stack.core_thermal_mass_scale * stack.vhc_si * area * stack.t_si_m
    )
    cap[n_total : n_total + n_per_layer] = (
        stack.spreader_thermal_mass_scale * stack.vhc_cu * area * stack.t_sp_m
    )
    cap[sink] = stack.sink_capacitance(die_area)

    return StackedRCModel(mesh3d, floorplan, cap, cond, g_amb, stack)


def default_stacked_stack() -> StackedMaterialStack:
    """The 2D calibrated knobs carried over to the stacked package.

    The per-layer structure is identical to the calibrated 2D die, so the
    calibrated vertical/lateral scales transfer; only the bonding interface
    is new (physical constants, not calibrated).
    """
    from ..thermal.calibrate import calibrated_stack

    base = calibrated_stack()
    return StackedMaterialStack(
        **{
            field: getattr(base, field)
            for field in base.__dataclass_fields__
        }
    )

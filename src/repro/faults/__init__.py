"""Fault injection and graceful degradation (``docs/faults.md``).

Deterministic, seeded fault models layered onto the interval simulator —
off by default, enabled per run via
:meth:`repro.config.SystemConfig.with_faults`:

- **sensor faults** (:class:`SensorShim`) — noise, bias, dropout and
  stuck-at on the temperature readings *schedulers* see; ground truth,
  hardware DTM and the thermal trace are never perturbed;
- **power spikes** — transient extra ground-truth power on random cores;
- **stuck-throttled cores** — cores pinned at ``f_min`` regardless of
  temperature (fed into :meth:`repro.sim.dtm.DtmController.set_stuck`);
- **migration failures** — planned placement hops abort, the thread stays
  on its source core and the scheduler re-plans
  (:meth:`repro.sched.base.Scheduler.repair_decision`).

The :class:`FaultInjector` bundles them all; every fault class draws from
its own seeded RNG stream, and the engine advances the injector exactly
once per interval, so runs are bit-reproducible under
``FaultsConfig.seed``.  Injected faults surface as structured events
(:class:`~repro.sim.events.SensorFaultInjected` & friends) and as
``faults.*`` metrics gauges; scheduler responses follow the
graceful-degradation ladder in :mod:`repro.sched.base`.
"""

from .injector import FaultInjector
from .sensors import SensorShim

__all__ = ["FaultInjector", "SensorShim"]

"""The seeded fault injector the engine drives once per interval.

One :class:`FaultInjector` owns every fault model of a run
(:class:`~repro.config.FaultsConfig`): the sensor shim, transient power
spikes, stuck-throttled cores and migration-hop failures.  Each fault
class draws from its own ``np.random.Generator`` stream (seeded from
``faults.seed`` plus a fixed stream index), so enabling or re-tuning one
fault model never shifts the random schedule of another.

Determinism contract: the engine calls :meth:`advance` exactly once per
simulated interval, and every stream's draw count per interval is a pure
function of the configuration — never of scheduler behaviour.  The single
exception is :meth:`migration_failures`, whose draw count follows the
number of attempted hops; it therefore has its own stream, and hops are
drawn in sorted order so a run is reproducible under its seed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config import SystemConfig
from ..sim.events import CoreStuckFault, Event, PowerSpikeInjected
from .sensors import SensorShim

__all__ = ["FaultInjector"]

#: Fixed RNG stream indices, one per fault class.
_STREAM_SENSOR = 1
_STREAM_POWER = 2
_STREAM_CORE = 3
_STREAM_MIGRATION = 4


class FaultInjector:
    """All fault models of one run, seeded and advanced per interval."""

    def __init__(self, config: SystemConfig) -> None:
        faults = config.faults
        if not faults.enabled:
            raise ValueError("fault injection is disabled in this config")
        self.faults = faults
        self.n_cores = config.n_cores
        seed = int(faults.seed)
        self._rng_power = np.random.default_rng([seed, _STREAM_POWER])
        self._rng_core = np.random.default_rng([seed, _STREAM_CORE])
        self._rng_migration = np.random.default_rng([seed, _STREAM_MIGRATION])
        #: scheduler-visible sensor bus (attached to the SimContext)
        self.sensors = SensorShim(
            self.n_cores,
            faults,
            np.random.default_rng([seed, _STREAM_SENSOR]),
            config.thermal.ambient_c,
        )
        self._now_s = 0.0
        self._spike_until_s = np.full(self.n_cores, -np.inf)
        self._core_stuck_until_s = np.full(self.n_cores, -np.inf)
        self.power_spike_count = 0
        self.core_stuck_count = 0
        self.migration_failure_count = 0

    # -- per-interval drive ----------------------------------------------------

    def advance(self, now_s: float, truth_c: np.ndarray) -> List[Event]:
        """Start this interval's fault episodes; returns their events.

        ``truth_c`` is the ground-truth core temperature vector at the
        interval start (the sensor shim perturbs a copy of it).  Episode
        probabilities are per core, per interval.
        """
        self._now_s = now_s
        events = self.sensors.advance(now_s, truth_c)
        faults = self.faults
        if faults.power_spike_prob > 0.0:
            starts = self._rng_power.random(self.n_cores) < faults.power_spike_prob
            for core in np.nonzero(starts)[0]:
                core = int(core)
                if now_s < self._spike_until_s[core]:
                    continue
                self._spike_until_s[core] = now_s + faults.power_spike_duration_s
                self.power_spike_count += 1
                events.append(
                    PowerSpikeInjected(
                        now_s,
                        core,
                        faults.power_spike_w,
                        faults.power_spike_duration_s,
                    )
                )
        if faults.core_stuck_prob > 0.0:
            starts = self._rng_core.random(self.n_cores) < faults.core_stuck_prob
            for core in np.nonzero(starts)[0]:
                core = int(core)
                if now_s < self._core_stuck_until_s[core]:
                    continue
                self._core_stuck_until_s[core] = (
                    now_s + faults.core_stuck_duration_s
                )
                self.core_stuck_count += 1
                events.append(
                    CoreStuckFault(now_s, core, faults.core_stuck_duration_s)
                )
        return events

    # -- fault-model queries ---------------------------------------------------

    def stuck_mask(self) -> np.ndarray:
        """Cores currently stuck throttled (fed into the DTM controller)."""
        return self._now_s < self._core_stuck_until_s

    def perturb_power(self, power_w: np.ndarray) -> np.ndarray:
        """Ground-truth power map with active spikes added.

        Spikes are real electrical transients: they heat the silicon, show
        up in the energy account and in what hardware DTM reacts to — they
        are *not* a sensor artifact.
        """
        if self.faults.power_spike_w == 0.0:
            return power_w
        spiking = self._now_s < self._spike_until_s
        if not np.any(spiking):
            return power_w
        out = np.asarray(power_w, dtype=float).copy()
        out[spiking] += self.faults.power_spike_w
        return out

    def migration_failures(
        self, moves: Sequence[Tuple[str, int, int]]
    ) -> List[Tuple[str, int, int]]:
        """Subset of planned ``(thread, src, dst)`` hops that abort.

        Hops are drawn in sorted order so the failure schedule is a pure
        function of the seed and the attempted moves.
        """
        prob = self.faults.migration_failure_prob
        if prob <= 0.0 or not moves:
            return []
        failed = [
            move
            for move in sorted(moves)
            if self._rng_migration.random() < prob
        ]
        self.migration_failure_count += len(failed)
        return failed

    def metrics(self) -> Dict[str, float]:
        """Injection counters (surfaced as ``faults.*`` metrics gauges)."""
        return {
            "sensor_dropouts": float(self.sensors.dropout_count),
            "sensor_stuck": float(self.sensors.stuck_count),
            "power_spikes": float(self.power_spike_count),
            "core_stuck": float(self.core_stuck_count),
            "migration_failures": float(self.migration_failure_count),
        }

"""The thermal-sensor shim: what schedulers see when sensors misbehave.

Real platforms read temperatures from an on-die sensor bus that is *not*
the physical silicon temperature: readings carry noise and bias, sensors
drop out (the controller reads garbage / a sentinel) and occasionally latch
a stale value ("stuck-at").  The shim models exactly that separation:

- **ground truth** stays the engine's :class:`~repro.thermal.spectral_state.
  SpectralThermalState` — hardware DTM and the thermal trace keep reading
  it, as a thermal diode wired straight into the throttling logic would;
- **scheduler-visible readings** come from this shim
  (:meth:`Scheduler.observed_temperatures
  <repro.sched.base.Scheduler.observed_temperatures>`), perturbed by the
  configured fault models.

Per-interval perturbations are drawn once, up front, in
:meth:`SensorShim.advance` — reading the bus twice in one interval returns
the same values, and the RNG draw count never depends on how often (or
whether) a scheduler looks at the sensors.

A dropped-out sensor reads NaN.  :meth:`SensorShim.observed` substitutes
the last-known-good reading per core; :meth:`SensorShim.max_staleness_s`
reports how old the oldest such substitute is, which drives the
graceful-degradation ladder (``docs/faults.md``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..config import FaultsConfig
from ..sim.events import Event, SensorFaultInjected

__all__ = ["SensorShim"]


class SensorShim:
    """Per-core temperature sensor bus with injectable faults."""

    def __init__(
        self,
        n_cores: int,
        faults: FaultsConfig,
        rng: np.random.Generator,
        ambient_c: float,
    ) -> None:
        self.n_cores = n_cores
        self._faults = faults
        self._rng = rng
        self._now_s = 0.0
        self._initialized = False
        self._readings = np.full(n_cores, ambient_c)
        self._last_good = np.full(n_cores, ambient_c)
        self._last_good_time_s = np.zeros(n_cores)
        self._dropout_until_s = np.full(n_cores, -np.inf)
        self._stuck_until_s = np.full(n_cores, -np.inf)
        self._stuck_value_c = np.full(n_cores, ambient_c)
        #: episode counters (surfaced via the injector's metrics)
        self.dropout_count = 0
        self.stuck_count = 0

    # -- engine side -----------------------------------------------------------

    def advance(self, now_s: float, truth_c: np.ndarray) -> List[Event]:
        """Draw this interval's perturbations against ground truth.

        Called once per simulated interval by the
        :class:`~repro.faults.injector.FaultInjector`; returns the fault
        events whose episodes started this interval.
        """
        faults = self._faults
        truth = np.asarray(truth_c, dtype=float)
        if not self._initialized:
            # sensors were healthy at power-on: seed last-known-good with
            # the initial ground truth so a dropout in the very first
            # interval still has a sane fallback
            self._last_good = truth.copy()
            self._last_good_time_s = np.full(self.n_cores, now_s)
            self._initialized = True
        events: List[Event] = []
        perturbed = truth.copy()
        if faults.sensor_noise_sigma_c > 0.0:
            perturbed = perturbed + self._rng.normal(
                0.0, faults.sensor_noise_sigma_c, self.n_cores
            )
        if faults.sensor_bias_c != 0.0:
            perturbed = perturbed + faults.sensor_bias_c
        if faults.sensor_stuck_prob > 0.0:
            starts = self._rng.random(self.n_cores) < faults.sensor_stuck_prob
            for core in np.nonzero(starts)[0]:
                core = int(core)
                if now_s < self._stuck_until_s[core]:
                    continue  # episode already running; don't re-latch
                self._stuck_until_s[core] = (
                    now_s + faults.sensor_stuck_duration_s
                )
                self._stuck_value_c[core] = perturbed[core]
                self.stuck_count += 1
                events.append(
                    SensorFaultInjected(
                        now_s, core, "stuck", faults.sensor_stuck_duration_s
                    )
                )
        if faults.sensor_dropout_prob > 0.0:
            starts = self._rng.random(self.n_cores) < faults.sensor_dropout_prob
            for core in np.nonzero(starts)[0]:
                core = int(core)
                if now_s < self._dropout_until_s[core]:
                    continue
                self._dropout_until_s[core] = (
                    now_s + faults.sensor_dropout_duration_s
                )
                self.dropout_count += 1
                events.append(
                    SensorFaultInjected(
                        now_s, core, "dropout", faults.sensor_dropout_duration_s
                    )
                )
        readings = perturbed
        stuck = now_s < self._stuck_until_s
        readings[stuck] = self._stuck_value_c[stuck]
        dropped = now_s < self._dropout_until_s
        readings[dropped] = np.nan
        good = ~dropped
        self._last_good[good] = readings[good]
        self._last_good_time_s[good] = now_s
        self._now_s = now_s
        self._readings = readings
        return events

    # -- scheduler side --------------------------------------------------------

    def readings(self) -> np.ndarray:
        """Raw scheduler-visible readings (NaN where a sensor dropped out)."""
        return self._readings.copy()

    def observed(self) -> np.ndarray:
        """Readings with dropouts replaced by last-known-good values.

        This is what :meth:`repro.sched.base.Scheduler.observed_temperatures`
        returns — always finite, possibly stale.
        """
        out = self._readings.copy()
        bad = ~np.isfinite(out)
        if np.any(bad):
            out[bad] = self._last_good[bad]
        return out

    def staleness_s(self, now_s: float) -> np.ndarray:
        """Per-core age of the value :meth:`observed` would return."""
        return np.maximum(now_s - self._last_good_time_s, 0.0)

    def max_staleness_s(self, now_s: float) -> float:
        """Age of the stalest core reading (drives the degradation ladder)."""
        return float(np.max(self.staleness_s(now_s)))

"""Small bounded LRU mapping shared by the hot-path caches.

The thermal solver (:class:`repro.thermal.matex.ThermalDynamics`) and the
Algorithm-1 calculator
(:class:`repro.core.peak_temperature.PeakTemperatureCalculator`) memoize
per-``tau`` / per-``(tau, delta)`` auxiliaries.  A scheduler that jitters
``tau`` (or a sweep over many intervals) would grow unbounded ``dict``
caches without limit; :class:`LruCache` bounds them with
least-recently-used eviction while keeping the hit/miss/eviction counters
the observability layer publishes as gauges.

Not thread-safe by design: every cache instance is owned by exactly one
simulation (the engine is single-threaded; the parallel sweep runner in
:mod:`repro.parallel` isolates processes, not threads).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, Optional

__all__ = ["LruCache"]

_MISSING = object()


class LruCache:
    """Bounded mapping with least-recently-used eviction and counters.

    Supports the small ``dict`` surface the callers use (``get``, item
    assignment, ``len``, ``in``) so it drops in for the previously
    unbounded caches.  :meth:`get` counts hits and misses; evictions are
    counted as they happen.  All counters survive :meth:`clear`.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LRU capacity must be at least 1")
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- mapping surface -----------------------------------------------------

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Counted lookup: refreshes recency on hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Uncounted lookup that does not refresh recency (for tests)."""
        value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()

    # -- observability -------------------------------------------------------

    def stats(self, prefix: str) -> Dict[str, int]:
        """``{prefix.hits, prefix.misses, prefix.evictions, prefix.size}``."""
        return {
            f"{prefix}.hits": self.hits,
            f"{prefix}.misses": self.misses,
            f"{prefix}.evictions": self.evictions,
            f"{prefix}.size": len(self._data),
        }

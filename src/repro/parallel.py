"""Deterministic parallel execution of independent experiment cells.

The figure sweeps (``repro.experiments.fig4a`` / ``fig4b``, the ablation
drivers) are embarrassingly parallel: every (benchmark, scheduler) or
(arrival rate, scheduler) cell builds its own :class:`SimContext` and runs
an independent simulation.  This module fans those cells out over a
``ProcessPoolExecutor`` while keeping four hard guarantees:

1. **Determinism** — a cell's seed is a pure function of the experiment's
   base seed and the cell's identity (:func:`derive_seed`, SHA-256); the
   wall clock is never consulted.  A parallel sweep therefore produces
   *byte-identical* results to a serial one, which the test suite asserts.
2. **Ordered collation** — results come back keyed and in submission
   order regardless of completion order.
3. **Graceful degradation** — with ``jobs <= 1``, a single cell, or on any
   platform where process pools are unavailable (sandboxes without
   ``fork``/semaphores), the cells simply run serially in-process.
4. **Crash tolerance** (``docs/faults.md``) — an optional
   :class:`RetryPolicy` re-runs failing cells with capped exponential
   backoff whose jitter is *seeded* (the retry schedule is as reproducible
   as the results); per-cell timeouts bound hung workers; a killed worker
   pool is rebuilt and its unfinished cells resubmitted; and a JSONL
   :class:`SweepCheckpoint` persists each finished cell so a killed sweep
   resumes with only its incomplete cells — byte-identical to an
   uninterrupted run.

Cell functions must be module-level (picklable) callables; everything a
cell needs travels through its ``kwargs`` (an :class:`RCThermalModel`
pickles fine — each worker rebuilds the cheap eigendecomposition itself).

``jobs="auto"`` picks the execution policy instead of a worker count
(``docs/performance.md``):

- **vectorized** — when the caller supplies a ``batch_runner`` (the
  figure sweeps pass a :class:`BatchedSweepRunner`), the cells run
  in-process with their thermal hot loops fused across the whole sweep
  (:class:`~repro.sim.batch.BatchedSimulatorSet`) — no pickling, no
  worker warm-up, byte-identical results;
- **fork** — otherwise, when ``os.cpu_count()`` offers more than one
  core, the classic process pool; large ndarray kwargs travel through
  ``multiprocessing.shared_memory`` segments instead of pickle streams;
- **serial** — the in-process fallback everywhere else.

Passing a ``report`` dict records which policy actually ran (and the
batch counters), so benchmarks can gate on the choice.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time as _time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from .obs.profiling import PhaseProfiler

__all__ = [
    "BatchedSweepRunner",
    "Cell",
    "CellTimeoutError",
    "RetryPolicy",
    "SweepCheckpoint",
    "derive_seed",
    "run_cells",
]

#: How often a broken worker pool is rebuilt before degrading to serial.
_MAX_POOL_RESTARTS = 3

#: ndarray kwargs at least this large travel via shared memory when
#: forking (smaller ones pickle faster than a segment round-trip).
_SHM_MIN_BYTES = 1 << 20


def derive_seed(base_seed: int, *parts: Any) -> int:
    """Deterministic 32-bit seed for one cell of a sweep.

    Hashes ``(base_seed, *parts)`` with SHA-256; ``parts`` identify the
    cell (benchmark name, arrival rate, scheduler name, ...).  The same
    inputs always yield the same seed — never derived from the wall clock
    or process identity, so serial and parallel runs, and re-runs on other
    machines, all agree.
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base_seed)).encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode())
    return int.from_bytes(digest.digest()[:4], "big")


class CellTimeoutError(RuntimeError):
    """A cell exceeded its per-cell timeout on every allowed attempt."""


@dataclass(frozen=True)
class Cell:
    """One independent unit of a sweep.

    ``fn`` must be a module-level function (process pools pickle it);
    ``key`` names the cell in the collated result dict.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(**self.kwargs)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry with capped exponential backoff, seeded jitter.

    A failing (or timed-out) cell is re-run up to ``retries`` extra times.
    Before attempt ``k`` the runner sleeps
    ``min(cap, base * 2**(k-1)) * jitter`` where ``jitter`` in ``[0, 1)``
    comes from :func:`derive_seed` over ``(seed, cell key, k)`` — the full
    backoff schedule is a pure function of the policy and the cell, never
    of the wall clock, so retry behaviour is reproducible in tests.
    """

    retries: int = 0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    def delay_s(self, key: Hashable, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of cell ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        bound = min(
            self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1)
        )
        jitter = derive_seed(self.seed, canonical_key(key), attempt) / 2**32
        return bound * jitter


def canonical_key(key: Hashable) -> str:
    """Canonical string form of a cell key (checkpoint record identity).

    JSON with sorted object keys; tuples and lists collapse to the same
    form, so a key round-tripped through a checkpoint still matches.
    """
    return json.dumps(key, sort_keys=True)


class SweepCheckpoint:
    """JSONL checkpoint of finished sweep cells (``docs/faults.md``).

    One record per line: ``{"key": <canonical key>, "result": <encoded>}``.
    Records are appended (flushed and fsynced) as cells finish, so a
    SIGKILLed sweep loses at most the in-flight cells; a truncated final
    line — the signature of a mid-write kill — is tolerated on load.
    :meth:`finalize` atomically rewrites the file in submission order,
    making the completed checkpoint's bytes independent of completion
    order and of how many times the sweep was interrupted.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, Any]:
        """Encoded results by canonical key (empty if no file yet)."""
        if not self.path.exists():
            return {}
        done: Dict[str, Any] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # a kill mid-append leaves a torn last line; every
                    # complete record before it is still good
                    continue
                done[record["key"]] = record["result"]
        return done

    def append(self, key: Hashable, encoded_result: Any) -> None:
        """Durably record one finished cell."""
        line = json.dumps(
            {"key": canonical_key(key), "result": encoded_result},
            sort_keys=True,
        )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def finalize(self, ordered: Iterable[Tuple[Hashable, Any]]) -> None:
        """Atomically rewrite the checkpoint in submission order.

        After this, the file's bytes are identical whether the sweep ran
        straight through or was killed and resumed any number of times.
        """
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for key, encoded in ordered:
                handle.write(
                    json.dumps(
                        {"key": canonical_key(key), "result": encoded},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self.path)


def _identity(value: Any) -> Any:
    return value


@dataclass(frozen=True)
class _ShmRef:
    """Pickle-light stand-in for an ndarray kwarg living in shared memory."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _pack_shared_arrays(cells: List[Cell]) -> Tuple[List[Cell], List[Any]]:
    """Move large ndarray kwargs into ``multiprocessing.shared_memory``.

    Each distinct array (by identity) is copied into one segment no
    matter how many cells reference it — a sweep sharing one thermal
    model's matrices ships them to the pool once, as raw bytes, instead
    of pickling a copy into every submitted task.  Returns the rewritten
    cells plus the open segments; the caller owns their lifetime (they
    must outlive every worker attempt, including pool restarts).
    """
    from multiprocessing import shared_memory

    segments: List[Any] = []
    by_id: Dict[int, _ShmRef] = {}
    packed: List[Cell] = []
    for cell in cells:
        rewritten = None
        for key, value in cell.kwargs.items():
            if not (
                isinstance(value, np.ndarray)
                and value.nbytes >= _SHM_MIN_BYTES
            ):
                continue
            ref = by_id.get(id(value))
            if ref is None:
                segment = shared_memory.SharedMemory(
                    create=True, size=value.nbytes
                )
                np.ndarray(value.shape, value.dtype, buffer=segment.buf)[
                    ...
                ] = value
                ref = _ShmRef(segment.name, value.shape, value.dtype.str)
                segments.append(segment)
                by_id[id(value)] = ref
            if rewritten is None:
                rewritten = dict(cell.kwargs)
            rewritten[key] = ref
        packed.append(
            cell
            if rewritten is None
            else Cell(key=cell.key, fn=cell.fn, kwargs=rewritten)
        )
    return packed, segments


def _release_segments(segments: List[Any]) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # already gone (interpreter teardown)
            pass


def _resolve_shm_ref(ref: _ShmRef) -> np.ndarray:
    """Materialize a worker-private copy of a shared-memory array.

    Copying (rather than viewing) keeps the array valid after the
    segment closes and keeps workers byte-identical to pickled
    transport — same values, same dtype, same layout.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=ref.name)
    try:
        view = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
        )
        return np.array(view)
    finally:
        segment.close()


def _execute_cell(cell: Cell) -> Any:
    # module-level trampoline so the pool pickles the Cell, not a closure
    if any(isinstance(v, _ShmRef) for v in cell.kwargs.values()):
        kwargs = {
            key: _resolve_shm_ref(value) if isinstance(value, _ShmRef) else value
            for key, value in cell.kwargs.items()
        }
        return cell.fn(**kwargs)
    return cell.execute()


def _run_serial_cell(cell: Cell, retry: RetryPolicy) -> Any:
    attempt = 0
    while True:
        try:
            # via the trampoline: a packed cell (shared-memory kwargs)
            # re-run in-process after a pool death still resolves
            return _execute_cell(cell)
        except Exception:
            if attempt >= retry.retries:
                raise
            attempt += 1
            _time.sleep(retry.delay_s(cell.key, attempt))


def _run_serial(
    cells: List[Cell],
    profiler: Optional[PhaseProfiler],
    retry: RetryPolicy,
    on_done: Callable[[Cell, Any], Any] = lambda cell, result: result,
) -> List[Any]:
    """Run cells in-process; ``on_done`` fires as each cell finishes.

    ``on_done`` runs at completion time — not after the whole sweep — so
    a checkpointing callback makes every finished cell durable before the
    next one starts (a SIGKILL mid-sweep loses only the in-flight cell).
    """
    results = []
    for cell in cells:
        if profiler is not None:
            with profiler.time("parallel.cell"):
                results.append(on_done(cell, _run_serial_cell(cell, retry)))
        else:
            results.append(on_done(cell, _run_serial_cell(cell, retry)))
    return results


def _resolve_policy(
    jobs: Union[int, str], n_pending: int, has_batch_runner: bool
) -> Tuple[str, int]:
    """Map the ``jobs`` argument to an execution policy and worker count.

    ``"auto"`` prefers the vectorized in-process path whenever a batch
    runner is available: it fuses the thermal hot loops with zero
    pickling/fork overhead, so it is never slower than serial — whereas
    a pool's worker warm-up can dominate short sweeps.  Forking is the
    fallback for batch-less sweeps on multi-core hosts.
    """
    if isinstance(jobs, str):
        if jobs != "auto":
            raise ValueError(f"jobs must be an int or 'auto', got {jobs!r}")
        if n_pending <= 1:
            return "serial", 1
        if has_batch_runner:
            return "vectorized", 1
        cores = os.cpu_count() or 1
        if cores > 1:
            return "fork", min(cores, n_pending)
        return "serial", 1
    if jobs <= 1 or n_pending <= 1:
        return "serial", 1
    return "fork", jobs


def run_cells(
    cells: Iterable[Cell],
    jobs: Union[int, str] = 1,
    profiler: Optional[PhaseProfiler] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    encode: Callable[[Any], Any] = _identity,
    decode: Callable[[Any], Any] = _identity,
    batch_runner: Optional[
        Callable[[List[Cell], Callable[[Cell, Any], Any]], List[Any]]
    ] = None,
    report: Optional[Dict[str, Any]] = None,
) -> Dict[Hashable, Any]:
    """Execute ``cells`` and collate ``{cell.key: result}`` in input order.

    ``jobs <= 1`` (or a single cell) runs serially in-process.  With
    ``jobs > 1`` the cells are dispatched to a ``ProcessPoolExecutor``;
    if the pool cannot be created (no ``fork`` support, sandboxed
    semaphores, unpicklable payload) — or breaks more than
    ``_MAX_POOL_RESTARTS`` times — the sweep falls back to the serial
    path; the results are identical either way, only the wall time
    differs.

    ``retry`` re-runs failing cells per :class:`RetryPolicy` (both modes);
    after the allowed attempts the cell's exception propagates.
    ``timeout_s`` bounds each cell's wall time — pool mode only (a serial
    in-process cell cannot be pre-empted); a timed-out attempt abandons
    the current pool and counts as a failed attempt, raising
    :class:`CellTimeoutError` once attempts are exhausted.

    ``checkpoint_path`` enables crash-tolerant sweeps: each finished
    cell's ``encode``-d result is durably appended to a
    :class:`SweepCheckpoint`, and with ``resume`` cells already present
    are not re-run.  Every result — fresh or restored — passes through
    ``decode(encode(result))``, so an interrupted-and-resumed sweep
    returns *byte-identical* values (and an identical finalized
    checkpoint file) to an uninterrupted one.  ``encode``/``decode``
    default to identity and must produce JSON-serializable payloads
    (simulation sweeps pass :func:`repro.io.result_to_dict` /
    :func:`repro.io.result_from_dict`).

    ``jobs="auto"`` delegates the policy choice to
    :func:`_resolve_policy`; the vectorized choice requires a
    ``batch_runner`` — a callable (usually a :class:`BatchedSweepRunner`)
    receiving the pending cells and a per-cell completion callback and
    returning their results in input order.  If it raises, the sweep
    falls back to serial (results are identical either way).  ``report``,
    when given, receives the executed policy, worker count, host core
    count and (vectorized only) the batch counters.
    """
    cells = list(cells)
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        raise ValueError("cell keys must be unique")
    retry = retry if retry is not None else RetryPolicy()
    checkpoint = (
        SweepCheckpoint(checkpoint_path) if checkpoint_path is not None else None
    )
    done: Dict[str, Any] = {}
    if checkpoint is not None:
        if resume:
            done = checkpoint.load()
        elif checkpoint.path.exists():
            checkpoint.path.unlink()

    pending = [
        cell for cell in cells if canonical_key(cell.key) not in done
    ]
    fresh: Dict[str, Any] = {}

    def _record(cell: Cell, result: Any) -> Any:
        if checkpoint is None:
            return result
        encoded = encode(result)
        checkpoint.append(cell.key, encoded)
        fresh[canonical_key(cell.key)] = encoded
        # round-trip even fresh results so resumed and uninterrupted
        # sweeps return byte-identical values
        return decode(encoded)

    # _record runs per cell *at completion time* (not after the sweep), so
    # every finished cell is durably checkpointed before the next result
    # lands — the crash-tolerance contract of docs/faults.md
    policy, workers = _resolve_policy(
        jobs, len(pending), batch_runner is not None
    )
    if report is not None:
        report.update(
            policy=policy,
            jobs=workers,
            cpu_count=os.cpu_count() or 1,
            cells=len(pending),
        )
    if policy == "vectorized":
        try:
            if profiler is not None:
                with profiler.time("parallel.batch"):
                    computed = batch_runner(pending, _record)
            else:
                computed = batch_runner(pending, _record)
            if report is not None and hasattr(batch_runner, "last_stats"):
                report["batch"] = dict(batch_runner.last_stats)
        except Exception:
            # a sweep the runner cannot batch (mixed platforms, foreign
            # cell functions) still completes — results are identical,
            # only the fusion is lost
            policy = "serial"
            if report is not None:
                report.update(policy="serial", fallback_from="vectorized")
            computed = _run_serial(pending, profiler, retry, on_done=_record)
    elif policy == "serial":
        computed = _run_serial(pending, profiler, retry, on_done=_record)
    else:
        packed, segments = _pack_shared_arrays(pending)
        try:
            if profiler is not None:
                with profiler.time("parallel.pool"):
                    computed = _run_pool(
                        packed, workers, retry, timeout_s, on_done=_record
                    )
            else:
                computed = _run_pool(
                    packed, workers, retry, timeout_s, on_done=_record
                )
        except (OSError, NotImplementedError, pickle.PicklingError):
            # cells recorded before the pool died are re-run serially but
            # re-recorded idempotently (the checkpoint keeps the last write)
            if report is not None:
                report.update(policy="serial", fallback_from="fork")
            computed = _run_serial(pending, profiler, retry, on_done=_record)
        finally:
            _release_segments(segments)

    by_key: Dict[str, Any] = {}
    for cell, result in zip(pending, computed):
        by_key[canonical_key(cell.key)] = result
    for canon, encoded in done.items():
        by_key[canon] = decode(encoded)
    if checkpoint is not None:
        stored = dict(done)
        stored.update(fresh)
        checkpoint.finalize(
            (cell.key, stored[canonical_key(cell.key)]) for cell in cells
        )
    return {cell.key: by_key[canonical_key(cell.key)] for cell in cells}


def _run_pool(
    cells: List[Cell],
    jobs: int,
    retry: RetryPolicy,
    timeout_s: Optional[float],
    on_done: Callable[[Cell, Any], Any] = lambda cell, result: result,
) -> List[Any]:
    """Pool execution with retries, timeouts and pool-restart recovery.

    ``on_done`` fires per cell as its future resolves (checkpoint
    durability, as in :func:`_run_serial`); already-recorded cells are
    never resubmitted after a pool restart, so it fires once per cell.
    Results are collated in submission order.  A ``BrokenProcessPool``
    (a worker died — OOM kill, SIGKILL, segfault) rebuilds the pool and
    resubmits the unfinished cells, up to ``_MAX_POOL_RESTARTS`` times;
    beyond that the remaining cells run serially.  A timed-out cell also
    abandons the pool (the hung worker would otherwise keep its slot),
    counting one failed attempt for that cell only.
    """
    results: Dict[int, Any] = {}
    attempts = [0] * len(cells)
    restarts = 0
    while len(results) < len(cells):
        outstanding = [i for i in range(len(cells)) if i not in results]
        # no `with`: its __exit__ would join workers, blocking forever on a
        # hung cell after a timeout — shutdown is managed explicitly instead
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(outstanding)))
        try:
            futures = {
                i: pool.submit(_execute_cell, cells[i]) for i in outstanding
            }
            for i in outstanding:
                while True:
                    try:
                        results[i] = on_done(
                            cells[i], futures[i].result(timeout=timeout_s)
                        )
                        break
                    except _FutureTimeout:
                        attempts[i] += 1
                        pool.shutdown(wait=False, cancel_futures=True)
                        if attempts[i] > retry.retries:
                            raise CellTimeoutError(
                                f"cell {cells[i].key!r} exceeded "
                                f"{timeout_s} s on every attempt"
                            ) from None
                        _time.sleep(retry.delay_s(cells[i].key, attempts[i]))
                        # the worker may be hung: abandon this pool and
                        # resubmit everything unfinished in a fresh one
                        raise _PoolAbandoned()
                    except BrokenProcessPool:
                        raise
                    except _PoolAbandoned:
                        raise
                    except Exception:
                        attempts[i] += 1
                        if attempts[i] > retry.retries:
                            pool.shutdown(wait=False, cancel_futures=True)
                            raise
                        _time.sleep(retry.delay_s(cells[i].key, attempts[i]))
                        futures[i] = pool.submit(_execute_cell, cells[i])
        except _PoolAbandoned:
            continue
        except BrokenProcessPool:
            pool.shutdown(wait=False, cancel_futures=True)
            restarts += 1
            if restarts > _MAX_POOL_RESTARTS:
                # the environment cannot keep a pool alive; finish serially
                remaining = [i for i in range(len(cells)) if i not in results]
                for i in remaining:
                    results[i] = on_done(
                        cells[i], _run_serial_cell(cells[i], retry)
                    )
            continue
        pool.shutdown(wait=True)
    return [results[i] for i in range(len(cells))]


class _PoolAbandoned(Exception):
    """Internal: restart the pool without counting a broken-pool strike."""


class BatchedSweepRunner:
    """The vectorized execution policy for :func:`run_cells`.

    Bridges a sweep's cells to a
    :class:`~repro.sim.batch.BatchedSimulatorSet`: an experiment-supplied
    *builder* turns the pending cells into simulators (sharing one
    injected ``ThermalDynamics`` per platform) plus the sweep horizon;
    the runner groups the simulators by dynamics identity — one fused
    batch per eigenbasis — and lock-steps each group to completion.  Per
    the :func:`run_cells` contract, the completion callback fires as each
    cell finishes (checkpoint durability) and results return in input
    order, byte-identical to a serial sweep.

    ``last_stats`` holds the merged ``parallel.batch.*`` counters of the
    most recent run (batch widths, fused-update/einsum count, detach
    events); :func:`run_cells` copies them into its ``report``.
    """

    def __init__(
        self,
        build: Callable[[List[Cell]], Tuple[List[Any], float]],
        detach_after: Optional[int] = None,
        metrics=None,
    ):
        """``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        receives the ``parallel.batch.*`` gauges after each run."""
        self.build = build
        self.detach_after = detach_after
        self.metrics = metrics
        self.last_stats: Dict[str, int] = {}

    def __call__(
        self, cells: List[Cell], on_done: Callable[[Cell, Any], Any]
    ) -> List[Any]:
        # imported here: repro.parallel is a leaf utility module and must
        # stay importable without dragging in the whole simulation stack
        from .sim.batch import BatchedSimulatorSet

        sims, max_time_s = self.build(cells)
        if len(sims) != len(cells):
            raise ValueError("builder must return one simulator per cell")
        groups: Dict[int, List[int]] = {}
        for index, sim in enumerate(sims):
            groups.setdefault(id(sim.ctx.dynamics), []).append(index)
        results: List[Any] = [None] * len(cells)
        self.last_stats = {}
        for members in groups.values():
            kwargs = (
                {} if self.detach_after is None
                else {"detach_after": self.detach_after}
            )
            batch = BatchedSimulatorSet(
                [sims[index] for index in members], **kwargs
            )
            outcomes = batch.run_all(
                max_time_s,
                on_finish=lambda local, result, members=members: on_done(
                    cells[members[local]], result
                ),
            )
            for local, index in enumerate(members):
                results[index] = outcomes[local]
            for key, value in batch.stats().items():
                if key.startswith("width"):
                    self.last_stats[key] = max(
                        self.last_stats.get(key, 0), value
                    )
                else:
                    self.last_stats[key] = self.last_stats.get(key, 0) + value
        if self.metrics is not None:
            for key, value in self.last_stats.items():
                self.metrics.gauge(f"parallel.batch.{key}").set(value)
        return results

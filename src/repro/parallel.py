"""Deterministic parallel execution of independent experiment cells.

The figure sweeps (``repro.experiments.fig4a`` / ``fig4b``, the ablation
drivers) are embarrassingly parallel: every (benchmark, scheduler) or
(arrival rate, scheduler) cell builds its own :class:`SimContext` and runs
an independent simulation.  This module fans those cells out over a
``ProcessPoolExecutor`` while keeping three hard guarantees:

1. **Determinism** — a cell's seed is a pure function of the experiment's
   base seed and the cell's identity (:func:`derive_seed`, SHA-256); the
   wall clock is never consulted.  A parallel sweep therefore produces
   *byte-identical* results to a serial one, which the test suite asserts.
2. **Ordered collation** — results come back keyed and in submission
   order regardless of completion order.
3. **Graceful degradation** — with ``jobs <= 1``, a single cell, or on any
   platform where process pools are unavailable (sandboxes without
   ``fork``/semaphores), the cells simply run serially in-process.

Cell functions must be module-level (picklable) callables; everything a
cell needs travels through its ``kwargs`` (an :class:`RCThermalModel`
pickles fine — each worker rebuilds the cheap eigendecomposition itself).
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional

from .obs.profiling import PhaseProfiler

__all__ = ["Cell", "derive_seed", "run_cells"]


def derive_seed(base_seed: int, *parts: Any) -> int:
    """Deterministic 32-bit seed for one cell of a sweep.

    Hashes ``(base_seed, *parts)`` with SHA-256; ``parts`` identify the
    cell (benchmark name, arrival rate, scheduler name, ...).  The same
    inputs always yield the same seed — never derived from the wall clock
    or process identity, so serial and parallel runs, and re-runs on other
    machines, all agree.
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base_seed)).encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode())
    return int.from_bytes(digest.digest()[:4], "big")


@dataclass(frozen=True)
class Cell:
    """One independent unit of a sweep.

    ``fn`` must be a module-level function (process pools pickle it);
    ``key`` names the cell in the collated result dict.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(**self.kwargs)


def _execute_cell(cell: Cell) -> Any:
    # module-level trampoline so the pool pickles the Cell, not a closure
    return cell.execute()


def _run_serial(
    cells: List[Cell], profiler: Optional[PhaseProfiler]
) -> List[Any]:
    results = []
    for cell in cells:
        if profiler is not None:
            with profiler.time("parallel.cell"):
                results.append(cell.execute())
        else:
            results.append(cell.execute())
    return results


def run_cells(
    cells: Iterable[Cell],
    jobs: int = 1,
    profiler: Optional[PhaseProfiler] = None,
) -> Dict[Hashable, Any]:
    """Execute ``cells`` and collate ``{cell.key: result}`` in input order.

    ``jobs <= 1`` (or a single cell) runs serially in-process.  With
    ``jobs > 1`` the cells are dispatched to a ``ProcessPoolExecutor``;
    if the pool cannot be created or breaks before any result is consumed
    (no ``fork`` support, sandboxed semaphores, unpicklable payload), the
    sweep silently falls back to the serial path — the results are
    identical either way, only the wall time differs.

    Exceptions raised *by a cell function* propagate to the caller in both
    modes; only pool-infrastructure failures trigger the fallback.
    """
    cells = list(cells)
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        raise ValueError("cell keys must be unique")
    if jobs <= 1 or len(cells) <= 1:
        return dict(zip(keys, _run_serial(cells, profiler)))
    try:
        if profiler is not None:
            with profiler.time("parallel.pool"):
                results = _run_pool(cells, jobs)
        else:
            results = _run_pool(cells, jobs)
    except (OSError, NotImplementedError, BrokenProcessPool, pickle.PicklingError):
        results = _run_serial(cells, profiler)
    return dict(zip(keys, results))


def _run_pool(cells: List[Cell], jobs: int) -> List[Any]:
    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        futures = [pool.submit(_execute_cell, cell) for cell in cells]
        # collate in submission order; completion order is irrelevant
        return [future.result() for future in futures]

"""Deterministic parallel execution of independent experiment cells.

The figure sweeps (``repro.experiments.fig4a`` / ``fig4b``, the ablation
drivers) are embarrassingly parallel: every (benchmark, scheduler) or
(arrival rate, scheduler) cell builds its own :class:`SimContext` and runs
an independent simulation.  This module fans those cells out over a
``ProcessPoolExecutor`` while keeping four hard guarantees:

1. **Determinism** — a cell's seed is a pure function of the experiment's
   base seed and the cell's identity (:func:`derive_seed`, SHA-256); the
   wall clock is never consulted.  A parallel sweep therefore produces
   *byte-identical* results to a serial one, which the test suite asserts.
2. **Ordered collation** — results come back keyed and in submission
   order regardless of completion order.
3. **Graceful degradation** — with ``jobs <= 1``, a single cell, or on any
   platform where process pools are unavailable (sandboxes without
   ``fork``/semaphores), the cells simply run serially in-process.
4. **Crash tolerance** (``docs/faults.md``) — an optional
   :class:`RetryPolicy` re-runs failing cells with capped exponential
   backoff whose jitter is *seeded* (the retry schedule is as reproducible
   as the results); per-cell timeouts bound hung workers; a killed worker
   pool is rebuilt and its unfinished cells resubmitted; and a JSONL
   :class:`SweepCheckpoint` persists each finished cell so a killed sweep
   resumes with only its incomplete cells — byte-identical to an
   uninterrupted run.

Cell functions must be module-level (picklable) callables; everything a
cell needs travels through its ``kwargs`` (an :class:`RCThermalModel`
pickles fine — each worker rebuilds the cheap eigendecomposition itself).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time as _time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from .obs.profiling import PhaseProfiler

__all__ = [
    "Cell",
    "CellTimeoutError",
    "RetryPolicy",
    "SweepCheckpoint",
    "derive_seed",
    "run_cells",
]

#: How often a broken worker pool is rebuilt before degrading to serial.
_MAX_POOL_RESTARTS = 3


def derive_seed(base_seed: int, *parts: Any) -> int:
    """Deterministic 32-bit seed for one cell of a sweep.

    Hashes ``(base_seed, *parts)`` with SHA-256; ``parts`` identify the
    cell (benchmark name, arrival rate, scheduler name, ...).  The same
    inputs always yield the same seed — never derived from the wall clock
    or process identity, so serial and parallel runs, and re-runs on other
    machines, all agree.
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base_seed)).encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode())
    return int.from_bytes(digest.digest()[:4], "big")


class CellTimeoutError(RuntimeError):
    """A cell exceeded its per-cell timeout on every allowed attempt."""


@dataclass(frozen=True)
class Cell:
    """One independent unit of a sweep.

    ``fn`` must be a module-level function (process pools pickle it);
    ``key`` names the cell in the collated result dict.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.fn(**self.kwargs)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry with capped exponential backoff, seeded jitter.

    A failing (or timed-out) cell is re-run up to ``retries`` extra times.
    Before attempt ``k`` the runner sleeps
    ``min(cap, base * 2**(k-1)) * jitter`` where ``jitter`` in ``[0, 1)``
    comes from :func:`derive_seed` over ``(seed, cell key, k)`` — the full
    backoff schedule is a pure function of the policy and the cell, never
    of the wall clock, so retry behaviour is reproducible in tests.
    """

    retries: int = 0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    def delay_s(self, key: Hashable, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of cell ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        bound = min(
            self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1)
        )
        jitter = derive_seed(self.seed, canonical_key(key), attempt) / 2**32
        return bound * jitter


def canonical_key(key: Hashable) -> str:
    """Canonical string form of a cell key (checkpoint record identity).

    JSON with sorted object keys; tuples and lists collapse to the same
    form, so a key round-tripped through a checkpoint still matches.
    """
    return json.dumps(key, sort_keys=True)


class SweepCheckpoint:
    """JSONL checkpoint of finished sweep cells (``docs/faults.md``).

    One record per line: ``{"key": <canonical key>, "result": <encoded>}``.
    Records are appended (flushed and fsynced) as cells finish, so a
    SIGKILLed sweep loses at most the in-flight cells; a truncated final
    line — the signature of a mid-write kill — is tolerated on load.
    :meth:`finalize` atomically rewrites the file in submission order,
    making the completed checkpoint's bytes independent of completion
    order and of how many times the sweep was interrupted.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, Any]:
        """Encoded results by canonical key (empty if no file yet)."""
        if not self.path.exists():
            return {}
        done: Dict[str, Any] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # a kill mid-append leaves a torn last line; every
                    # complete record before it is still good
                    continue
                done[record["key"]] = record["result"]
        return done

    def append(self, key: Hashable, encoded_result: Any) -> None:
        """Durably record one finished cell."""
        line = json.dumps(
            {"key": canonical_key(key), "result": encoded_result},
            sort_keys=True,
        )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def finalize(self, ordered: Iterable[Tuple[Hashable, Any]]) -> None:
        """Atomically rewrite the checkpoint in submission order.

        After this, the file's bytes are identical whether the sweep ran
        straight through or was killed and resumed any number of times.
        """
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for key, encoded in ordered:
                handle.write(
                    json.dumps(
                        {"key": canonical_key(key), "result": encoded},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self.path)


def _identity(value: Any) -> Any:
    return value


def _execute_cell(cell: Cell) -> Any:
    # module-level trampoline so the pool pickles the Cell, not a closure
    return cell.execute()


def _run_serial_cell(cell: Cell, retry: RetryPolicy) -> Any:
    attempt = 0
    while True:
        try:
            return cell.execute()
        except Exception:
            if attempt >= retry.retries:
                raise
            attempt += 1
            _time.sleep(retry.delay_s(cell.key, attempt))


def _run_serial(
    cells: List[Cell],
    profiler: Optional[PhaseProfiler],
    retry: RetryPolicy,
    on_done: Callable[[Cell, Any], Any] = lambda cell, result: result,
) -> List[Any]:
    """Run cells in-process; ``on_done`` fires as each cell finishes.

    ``on_done`` runs at completion time — not after the whole sweep — so
    a checkpointing callback makes every finished cell durable before the
    next one starts (a SIGKILL mid-sweep loses only the in-flight cell).
    """
    results = []
    for cell in cells:
        if profiler is not None:
            with profiler.time("parallel.cell"):
                results.append(on_done(cell, _run_serial_cell(cell, retry)))
        else:
            results.append(on_done(cell, _run_serial_cell(cell, retry)))
    return results


def run_cells(
    cells: Iterable[Cell],
    jobs: int = 1,
    profiler: Optional[PhaseProfiler] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    encode: Callable[[Any], Any] = _identity,
    decode: Callable[[Any], Any] = _identity,
) -> Dict[Hashable, Any]:
    """Execute ``cells`` and collate ``{cell.key: result}`` in input order.

    ``jobs <= 1`` (or a single cell) runs serially in-process.  With
    ``jobs > 1`` the cells are dispatched to a ``ProcessPoolExecutor``;
    if the pool cannot be created (no ``fork`` support, sandboxed
    semaphores, unpicklable payload) — or breaks more than
    ``_MAX_POOL_RESTARTS`` times — the sweep falls back to the serial
    path; the results are identical either way, only the wall time
    differs.

    ``retry`` re-runs failing cells per :class:`RetryPolicy` (both modes);
    after the allowed attempts the cell's exception propagates.
    ``timeout_s`` bounds each cell's wall time — pool mode only (a serial
    in-process cell cannot be pre-empted); a timed-out attempt abandons
    the current pool and counts as a failed attempt, raising
    :class:`CellTimeoutError` once attempts are exhausted.

    ``checkpoint_path`` enables crash-tolerant sweeps: each finished
    cell's ``encode``-d result is durably appended to a
    :class:`SweepCheckpoint`, and with ``resume`` cells already present
    are not re-run.  Every result — fresh or restored — passes through
    ``decode(encode(result))``, so an interrupted-and-resumed sweep
    returns *byte-identical* values (and an identical finalized
    checkpoint file) to an uninterrupted one.  ``encode``/``decode``
    default to identity and must produce JSON-serializable payloads
    (simulation sweeps pass :func:`repro.io.result_to_dict` /
    :func:`repro.io.result_from_dict`).
    """
    cells = list(cells)
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        raise ValueError("cell keys must be unique")
    retry = retry if retry is not None else RetryPolicy()
    checkpoint = (
        SweepCheckpoint(checkpoint_path) if checkpoint_path is not None else None
    )
    done: Dict[str, Any] = {}
    if checkpoint is not None:
        if resume:
            done = checkpoint.load()
        elif checkpoint.path.exists():
            checkpoint.path.unlink()

    pending = [
        cell for cell in cells if canonical_key(cell.key) not in done
    ]
    fresh: Dict[str, Any] = {}

    def _record(cell: Cell, result: Any) -> Any:
        if checkpoint is None:
            return result
        encoded = encode(result)
        checkpoint.append(cell.key, encoded)
        fresh[canonical_key(cell.key)] = encoded
        # round-trip even fresh results so resumed and uninterrupted
        # sweeps return byte-identical values
        return decode(encoded)

    # _record runs per cell *at completion time* (not after the sweep), so
    # every finished cell is durably checkpointed before the next result
    # lands — the crash-tolerance contract of docs/faults.md
    serial = jobs <= 1 or len(pending) <= 1
    if serial:
        computed = _run_serial(pending, profiler, retry, on_done=_record)
    else:
        try:
            if profiler is not None:
                with profiler.time("parallel.pool"):
                    computed = _run_pool(
                        pending, jobs, retry, timeout_s, on_done=_record
                    )
            else:
                computed = _run_pool(
                    pending, jobs, retry, timeout_s, on_done=_record
                )
        except (OSError, NotImplementedError, pickle.PicklingError):
            # cells recorded before the pool died are re-run serially but
            # re-recorded idempotently (the checkpoint keeps the last write)
            computed = _run_serial(pending, profiler, retry, on_done=_record)

    by_key: Dict[str, Any] = {}
    for cell, result in zip(pending, computed):
        by_key[canonical_key(cell.key)] = result
    for canon, encoded in done.items():
        by_key[canon] = decode(encoded)
    if checkpoint is not None:
        stored = dict(done)
        stored.update(fresh)
        checkpoint.finalize(
            (cell.key, stored[canonical_key(cell.key)]) for cell in cells
        )
    return {cell.key: by_key[canonical_key(cell.key)] for cell in cells}


def _run_pool(
    cells: List[Cell],
    jobs: int,
    retry: RetryPolicy,
    timeout_s: Optional[float],
    on_done: Callable[[Cell, Any], Any] = lambda cell, result: result,
) -> List[Any]:
    """Pool execution with retries, timeouts and pool-restart recovery.

    ``on_done`` fires per cell as its future resolves (checkpoint
    durability, as in :func:`_run_serial`); already-recorded cells are
    never resubmitted after a pool restart, so it fires once per cell.
    Results are collated in submission order.  A ``BrokenProcessPool``
    (a worker died — OOM kill, SIGKILL, segfault) rebuilds the pool and
    resubmits the unfinished cells, up to ``_MAX_POOL_RESTARTS`` times;
    beyond that the remaining cells run serially.  A timed-out cell also
    abandons the pool (the hung worker would otherwise keep its slot),
    counting one failed attempt for that cell only.
    """
    results: Dict[int, Any] = {}
    attempts = [0] * len(cells)
    restarts = 0
    while len(results) < len(cells):
        outstanding = [i for i in range(len(cells)) if i not in results]
        # no `with`: its __exit__ would join workers, blocking forever on a
        # hung cell after a timeout — shutdown is managed explicitly instead
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(outstanding)))
        try:
            futures = {
                i: pool.submit(_execute_cell, cells[i]) for i in outstanding
            }
            for i in outstanding:
                while True:
                    try:
                        results[i] = on_done(
                            cells[i], futures[i].result(timeout=timeout_s)
                        )
                        break
                    except _FutureTimeout:
                        attempts[i] += 1
                        pool.shutdown(wait=False, cancel_futures=True)
                        if attempts[i] > retry.retries:
                            raise CellTimeoutError(
                                f"cell {cells[i].key!r} exceeded "
                                f"{timeout_s} s on every attempt"
                            ) from None
                        _time.sleep(retry.delay_s(cells[i].key, attempts[i]))
                        # the worker may be hung: abandon this pool and
                        # resubmit everything unfinished in a fresh one
                        raise _PoolAbandoned()
                    except BrokenProcessPool:
                        raise
                    except _PoolAbandoned:
                        raise
                    except Exception:
                        attempts[i] += 1
                        if attempts[i] > retry.retries:
                            pool.shutdown(wait=False, cancel_futures=True)
                            raise
                        _time.sleep(retry.delay_s(cells[i].key, attempts[i]))
                        futures[i] = pool.submit(_execute_cell, cells[i])
        except _PoolAbandoned:
            continue
        except BrokenProcessPool:
            pool.shutdown(wait=False, cancel_futures=True)
            restarts += 1
            if restarts > _MAX_POOL_RESTARTS:
                # the environment cannot keep a pool alive; finish serially
                remaining = [i for i in range(len(cells)) if i not in results]
                for i in remaining:
                    results[i] = on_done(
                        cells[i], _run_serial_cell(cells[i], retry)
                    )
            continue
        pool.shutdown(wait=True)
    return [results[i] for i in range(len(cells))]


class _PoolAbandoned(Exception):
    """Internal: restart the pool without counting a broken-pool strike."""

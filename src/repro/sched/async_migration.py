"""Asynchronous on-demand migration without DVFS.

The paper's introduction contrasts its *synchronous, proactive* rotations
with the traditional strategy of *asynchronous, on-demand* migrations
performed "often as a measure of last resort".  This baseline isolates that
contrast: like HotPotato it never touches DVFS, but instead of rotating
proactively it migrates only when the RC predictor says a core is about to
cross the threshold — PCMig's migration trigger without PCMig's DVFS.

Expected behaviour (verified in ``benchmarks/test_ablation_async_vs_sync``):
reactive migrations fire after heat has already accumulated, ping-pong
threads between the few cool cores, and leave DTM to clean up — losing to
synchronous rotation on hot workloads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import units
from ..workload.task import Task
from .base import Scheduler, SchedulerDecision
from .naive import StaticPlacer

#: Prediction horizon [s] and guard band [degC] (as PCMig).
_PREDICTION_HORIZON_S = units.ms(5.0)
_GUARD_BAND_C = 1.0
_MAX_MIGRATIONS_PER_INTERVAL = 2


class AsyncMigrationScheduler(Scheduler):
    """Reactive predictive migrations at fixed peak frequency."""

    name = "async-migration"

    def __init__(
        self,
        prediction_horizon_s: float = _PREDICTION_HORIZON_S,
        guard_band_c: float = _GUARD_BAND_C,
    ) -> None:
        super().__init__()
        self.prediction_horizon_s = prediction_horizon_s
        self.guard_band_c = guard_band_c
        self._placer: Optional[StaticPlacer] = None
        self.migration_decisions = 0

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self._placer = StaticPlacer(ctx.rings.amd)

    # -- admission ------------------------------------------------------------

    def _can_admit(self, task: Task) -> bool:
        return len(self._placer.free_cores()) >= task.n_threads

    def _admit(self, task: Task, now_s: float) -> None:
        self._placer.place_task(task)

    def _release(self, task: Task, now_s: float) -> None:
        self._placer.release_task(task)

    # -- reactive migration -----------------------------------------------------

    def _predicted_core_temps(self) -> Optional[np.ndarray]:
        try:
            temps_now = self.observed_temperatures()
        except RuntimeError:
            return None
        idle = self.ctx.power_model.idle_power_w()
        power = np.full(self.ctx.n_cores, idle)
        for thread_id, core in self._placer.placements.items():
            try:
                power[core] = self.ctx.thread_recent_power_w(thread_id)
            except KeyError:
                continue
        model = self.ctx.thermal_model
        ambient = self.ctx.config.thermal.ambient_c
        nodes = model.steady_state(power, ambient)
        nodes[: model.n_cores] = temps_now
        # one-shot what-if: eigenbasis step, no second steady-state solve
        future = self.ctx.dynamics.step_spectral(
            nodes, power, ambient, self.prediction_horizon_s
        )
        return model.core_temperatures(future)

    def _maybe_migrate(self) -> None:
        predicted = self._predicted_core_temps()
        if predicted is None:
            return
        threshold = self.ctx.config.thermal.dtm_threshold_c - self.guard_band_c
        placements = self._placer.placements
        occupied = {core: thread for thread, core in placements.items()}
        free = self._placer.free_cores()
        if not free:
            return
        endangered = sorted(
            (core for core in occupied if predicted[core] > threshold),
            key=lambda c: -predicted[c],
        )
        for core in endangered[:_MAX_MIGRATIONS_PER_INTERVAL]:
            if not free:
                break
            free.sort(key=lambda c: (predicted[c], self.ctx.rings.amd[c]))
            target = free[0]
            if predicted[target] >= predicted[core]:
                continue
            self._placer.move(occupied[core], target)
            free.remove(target)
            free.append(core)
            self.migration_decisions += 1

    def on_migration_failure(self, failures, placements, now_s: float) -> None:
        """Sync the placer with the repaired map after aborted hops."""
        self._placer.sync(placements)

    def decide(self, now_s: float) -> SchedulerDecision:
        self._maybe_migrate()
        freqs = np.full(self.ctx.n_cores, self.ctx.config.dvfs.f_max_hz)
        return SchedulerDecision(
            placements=dict(self._placer.placements),
            frequencies=freqs,
            waiting=self.waiting_threads(),
        )

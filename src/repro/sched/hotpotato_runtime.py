"""HotPotato glued into the interval simulator.

The pure heuristic lives in :mod:`repro.core.hotpotato`; this adapter feeds
it what the paper says it consumes at run time — per-thread power history
(10 ms window) and effective CPI — and translates its
:class:`~repro.core.rotation.RotationSchedule` into per-interval placements.

**Algorithm 2 step mapping** — where each phase of the paper's pseudocode
lives in this adapter (and the heuristic it drives):

=====================  ==========================================================
paper Algorithm 2      implementation
=====================  ==========================================================
lines 1-7 (arrival:    :meth:`HotPotatoScheduler._admit` →
ring search)           :meth:`repro.core.hotpotato.HotPotato.admit` — try rings
                       lowest-AMD outward, keep the coolest empty slot, accept
                       the first ring with ``T_peak + Delta < T_DTM``
lines 8-14 (arrival:   ``HotPotato.admit`` mitigation branch — place at the
mitigation)            coolest candidate anyway, migrate lowest-CPI (hottest)
                       threads outward, re-select tau
lines 15-22 (exit:     :meth:`HotPotatoScheduler._release` →
headroom rebalance)    :meth:`repro.core.hotpotato.HotPotato.remove` — migrate
                       highest-CPI (memory-bound) threads inward while the
                       analytic peak stays sustainable
lines 23-27 (tau       ``HotPotato`` tau re-selection — rotation *off* when
selection)             statically sustainable, else the slowest sustainable tau
run-time feedback      :meth:`HotPotatoScheduler._refresh_estimates` — 10 ms
(Section V, ``Delta``  power-history averages fed back each interval; drift
sudden-change)         > 1 W against the last re-optimization's estimates
                       triggers :meth:`repro.core.hotpotato.HotPotato.refresh`
epoch advance          :meth:`HotPotatoScheduler._advance_epoch` +
(Section IV rotation)  ``RotationSchedule.placement_at`` — cyclic shift of each
                       ring's slot assignment once per tau
=====================  ==========================================================

Power estimates for *arriving* threads (no history yet) are the profile's
peak power, i.e. deliberately conservative; once history accumulates, the
estimates relax to the observed duty-cycled average and the paper's
"sudden change" trigger (``Delta``) re-optimizes the assignment.

HotPotato never touches DVFS: every core always runs at f_max (hardware DTM
remains the backstop the analytics are designed to keep silent).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..core.hotpotato import HotPotato, ThreadInfo
from ..workload.task import Task
from .base import Scheduler, SchedulerDecision

#: Power-estimate drift [W] that triggers a re-optimization.
_POWER_DRIFT_TRIGGER_W = 1.0
#: Minimum spacing between drift-triggered refreshes [epochs].
_REFRESH_SPACING = 8
#: Widening factor applied to the Algorithm-1 margin ``delta`` while the
#: sensor bus is degraded: stale power/temperature inputs mean the analytic
#: peak is computed against yesterday's chip, so the safety margin grows.
_DEGRADED_HEADROOM_FACTOR = 3.0


class HotPotatoScheduler(Scheduler):
    """The paper's scheduler: synchronous thread rotation, no DVFS."""

    name = "hotpotato"

    def __init__(
        self,
        headroom_delta_c: Optional[float] = None,
        initial_tau_s: Optional[float] = None,
    ) -> None:
        super().__init__()
        self._headroom_override = headroom_delta_c
        self._tau_override = initial_tau_s
        self.hotpotato: Optional[HotPotato] = None
        self._profiles: Dict[str, object] = {}
        self._epoch = 0
        self._epoch_started_s = 0.0
        self._intervals_since_refresh = 0
        #: per-thread power estimate HotPotato last *re-optimized* with;
        #: drift is measured against this snapshot, not the last interval.
        self._power_at_refresh: Dict[str, float] = {}
        #: True once a refresh changed nothing — skip further refreshes
        #: until arrivals/exits or estimate drift dirty the state again.
        self._settled = False
        #: observability counters (published via :meth:`metrics`)
        self._refresh_count = 0
        self._urgent_refresh_count = 0

    def attach(self, ctx) -> None:
        super().attach(ctx)
        thermal = ctx.config.thermal
        self._nominal_headroom_c = (
            self._headroom_override
            if self._headroom_override is not None
            else thermal.headroom_delta_c
        )
        self.hotpotato = HotPotato(
            ctx.rings,
            ctx.calculator,
            t_dtm_c=thermal.dtm_threshold_c,
            headroom_delta_c=self._nominal_headroom_c,
            idle_power_w=thermal.idle_power_w,
            initial_tau_s=(
                self._tau_override
                if self._tau_override is not None
                else ctx.config.rotation_interval_s
            ),
        )

    # -- arrival / completion ------------------------------------------------------

    def _arrival_estimate(self, task: Task) -> ThreadInfo:
        """Conservative ThreadInfo for a thread with no history yet."""
        profile = task.profile
        reference_core = self.ctx.rings.ring(0)[0]
        power = self.ctx.power_model.max_core_power_w(profile.p_dyn_ref_w)
        cpi = self.ctx.perf.effective_cpi(profile, reference_core)
        return ThreadInfo("", power, cpi)

    def _can_admit(self, task: Task) -> bool:
        free = sum(
            len(self.hotpotato.free_slots(ring))
            for ring in range(self.ctx.rings.n_rings)
        )
        return free >= task.n_threads

    def _admit(self, task: Task, now_s: float) -> None:
        template = self._arrival_estimate(task)
        for thread in task.threads:
            info = ThreadInfo(thread.thread_id, template.power_w, template.cpi)
            self.hotpotato.admit(info)
            self._profiles[thread.thread_id] = task.profile
            self._power_at_refresh[thread.thread_id] = template.power_w
        self._settled = False

    def _release(self, task: Task, now_s: float) -> None:
        for thread in task.threads:
            self.hotpotato.remove(thread.thread_id)
            self._profiles.pop(thread.thread_id, None)
            self._power_at_refresh.pop(thread.thread_id, None)
        self._settled = False

    # -- per-interval ----------------------------------------------------------------

    def preferred_interval_s(self) -> Optional[float]:
        tau = self.hotpotato.tau_s
        return tau

    def _advance_epoch(self, now_s: float) -> None:
        tau = self.hotpotato.tau_s
        if tau is None:
            self._epoch_started_s = now_s
            return
        while now_s >= self._epoch_started_s + tau - 1e-12:
            self._epoch += 1
            self._epoch_started_s += tau

    def _measured_power(self, thread_id: str) -> float:
        """The power signal fed into HotPotato's analytics.

        Subclasses that apply DVFS override this to refer the measurement
        back to f_max, keeping the analytic peak frequency-independent.
        """
        return self.ctx.thread_power_w(thread_id)

    def _refresh_estimates(self, now_s: float) -> None:
        """Feed measured power back; re-optimize on drastic drift.

        Drift is measured against the estimates in force at the last
        re-optimization (the paper's sudden-change trigger ``Delta``), so a
        slow ramp still accumulates into a refresh.
        """
        self._intervals_since_refresh += 1
        max_drift = 0.0
        measured_now: Dict[str, float] = {}
        for thread_id, info in list(self.hotpotato._threads.items()):
            try:
                # the paper's signal: plain 10 ms window average.  Rotation
                # budgets against time-averaged heat, so burst power must
                # NOT be used here — averaging bursts across the ring is
                # precisely the mechanism.  DTM backstops estimate lag.
                measured = self._measured_power(thread_id)
            except KeyError:
                continue
            measured_now[thread_id] = measured
            baseline = self._power_at_refresh.get(thread_id, info.power_w)
            max_drift = max(max_drift, abs(measured - baseline))
            self.hotpotato.update_power(thread_id, measured)
        if max_drift > 0.5:
            self._settled = False
        # a drastic power increase is acted upon immediately (the paper's
        # Delta trigger); routine re-optimization is rate-limited
        urgent = (
            max_drift > _POWER_DRIFT_TRIGGER_W
            and self._intervals_since_refresh >= 2
        )
        routine = (
            not self._settled
            and self._intervals_since_refresh >= _REFRESH_SPACING
        )
        if urgent or routine:
            before = self.hotpotato.state_fingerprint()
            self.hotpotato.refresh()
            self._refresh_count += 1
            if urgent:
                self._urgent_refresh_count += 1
            self._intervals_since_refresh = 0
            self._power_at_refresh.update(measured_now)
            self._settled = self.hotpotato.state_fingerprint() == before

    def decide(self, now_s: float) -> SchedulerDecision:
        self._refresh_estimates(now_s)
        self._advance_epoch(now_s)
        schedule = self.hotpotato.schedule()
        placements = schedule.placement_at(self._epoch)
        freqs = np.full(self.ctx.n_cores, self.ctx.config.dvfs.f_max_hz)
        return SchedulerDecision(
            placements=placements,
            frequencies=freqs,
            waiting=self.waiting_threads(),
            tau_s=self.hotpotato.tau_s,
        )

    # -- graceful degradation --------------------------------------------------

    def on_degradation_change(
        self, old_mode: str, new_mode: str, now_s: float
    ) -> None:
        """Widen the Algorithm-1 margin ``delta`` while sensors are stale.

        In ``degraded`` (and ``safe-park``) mode the 10 ms power window
        and the temperature feedback HotPotato plans against are
        last-known-good values; multiplying the headroom by
        ``_DEGRADED_HEADROOM_FACTOR`` makes the analytic ``T_peak + delta
        < T_DTM`` admission test conservative against that staleness.  The
        nominal margin is restored as soon as readings are fresh again,
        and either way the very next interval re-optimizes.
        """
        if self.hotpotato is None:
            return
        if new_mode == "normal":
            self.hotpotato.headroom_delta_c = self._nominal_headroom_c
        else:
            self.hotpotato.headroom_delta_c = (
                self._nominal_headroom_c * _DEGRADED_HEADROOM_FACTOR
            )
        # force a prompt re-optimization under the new margin
        self._settled = False
        self._intervals_since_refresh = _REFRESH_SPACING

    def on_migration_failure(self, failures, placements, now_s: float) -> None:
        """An aborted hop left reality out of step with the rotation.

        The rotation schedule itself stays valid (it re-issues the
        intended slot assignment next epoch, so the thread simply retries
        the hop); marking the state unsettled makes the next routine
        refresh re-check sustainability against what actually happened.
        """
        self._settled = False

    def metrics(self) -> Mapping[str, float]:
        """Rotation/refresh counters for the observability snapshot."""
        data = dict(super().metrics())
        data["rotation_epochs"] = float(self._epoch)
        data["refreshes"] = float(self._refresh_count)
        data["urgent_refreshes"] = float(self._urgent_refresh_count)
        tau = self.hotpotato.tau_s if self.hotpotato is not None else None
        data["rotation_active"] = 1.0 if tau is not None else 0.0
        if tau is not None:
            data["tau_s"] = float(tau)
        if self.hotpotato is not None:
            # Algorithm-1 evaluator health: alpha/beta/peak-memo cache
            # counters and batch widths (surface as ``sched.alg1.*`` gauges)
            for key, value in self.hotpotato.calculator.cache_stats().items():
                data[f"alg1.{key}"] = float(value)
        return data

"""PCGov baseline: TSP power budgeting enforced by per-core DVFS.

PCGov (Rapp et al., ISLPED 2018 / TC 2019) maps tasks onto the S-NUCA
many-core performance-greedily and keeps the chip thermally safe purely
with DVFS: every active core receives the (mapping-aware) Thermal Safe
Power budget, and each core's frequency is the highest 100 MHz step whose
*measured* thread power fits the budget.

The measured-power governor (rather than worst-case activity) is what makes
this a strong baseline: a duty-cycled or memory-bound thread that naturally
fits the budget keeps running at f_max; only threads whose observed power
exceeds the budget get slowed.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..workload.task import Task
from .base import Scheduler, SchedulerDecision
from .naive import StaticPlacer


class PCGovScheduler(Scheduler):
    """TSP-budgeted DVFS scheduler (no migrations)."""

    name = "pcgov"

    def __init__(
        self, budget_mode: str = "mapping", governor: str = "profile"
    ) -> None:
        """``budget_mode``: ``"mapping"`` uses the mapping-aware TSP budget
        (the stronger PCGov variant); ``"worst-case"`` uses the classic
        mapping-agnostic TSP budget of Pagani et al. (what the paper's
        Fig. 2b labels "TSP").

        ``governor``: ``"profile"`` (published behaviour) picks the highest
        frequency whose *full-activity* thread power fits the budget —
        deterministic and always thermally safe; ``"measured"`` budgets the
        observed (duty-cycled) power instead — more aggressive, kept as an
        ablation variant."""
        super().__init__()
        if budget_mode not in ("mapping", "worst-case"):
            raise ValueError("budget_mode must be 'mapping' or 'worst-case'")
        if governor not in ("profile", "measured"):
            raise ValueError("governor must be 'profile' or 'measured'")
        self.budget_mode = budget_mode
        self.governor = governor
        self._placer: Optional[StaticPlacer] = None
        self._budget_w: Optional[float] = None
        self._core_freq: Optional[np.ndarray] = None
        self._profile_of: Dict[str, object] = {}
        # the profile governor is a pure function of (profile, core,
        # budget): the DVFS ladder, LLC latencies and power model never
        # change mid-run, so memoizing the picked level is byte-exact
        self._profile_freq_cache: Dict[tuple, float] = {}

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self._placer = StaticPlacer(ctx.rings.amd)
        self._core_freq = np.full(ctx.n_cores, ctx.config.dvfs.f_max_hz)

    # -- placement ------------------------------------------------------------

    def _can_admit(self, task: Task) -> bool:
        return len(self._placer.free_cores()) >= task.n_threads

    def _admit(self, task: Task, now_s: float) -> None:
        self._placer.place_task(task)
        for thread in task.threads:
            self._profile_of[thread.thread_id] = task.profile
        self._recompute_budget()

    def _release(self, task: Task, now_s: float) -> None:
        self._placer.release_task(task)
        for thread in task.threads:
            self._profile_of.pop(thread.thread_id, None)
        self._recompute_budget()

    def _recompute_budget(self) -> None:
        active = self._placer.occupied_cores()
        if not active:
            self._budget_w = None
        elif self.budget_mode == "worst-case":
            self._budget_w = self.ctx.tsp.worst_case_budget(len(active))
        else:
            self._budget_w = self.ctx.tsp.budget_for_mapping(active)

    def on_migration_failure(self, failures, placements, now_s: float) -> None:
        """Bring the placer back in line with the repaired placement map.

        An aborted hop means the thread never left its source core; the
        TSP budget is mapping-aware, so it is recomputed for the actual
        mapping.
        """
        self._placer.sync(placements)
        self._recompute_budget()

    # -- DVFS governor ----------------------------------------------------------

    def _power_at(self, measured_w: float, f_from: float, f_to: float) -> float:
        """Rescale a measured core power from one frequency to another.

        Dynamic power scales with ``f * V(f)^2``; the idle floor does not.
        """
        idle = self.ctx.power_model.idle_power_w()
        dyn = max(0.0, measured_w - idle)
        dvfs = self.ctx.config.dvfs
        scale_from = f_from * dvfs.voltage(f_from) ** 2
        scale_to = f_to * dvfs.voltage(f_to) ** 2
        return idle + dyn * scale_to / scale_from

    def _profile_frequency(self, thread_id: str, core: int) -> float:
        """Highest step whose full-activity thread power fits the budget."""
        profile = self._profile_of.get(thread_id)
        f_max = self.ctx.config.dvfs.f_max_hz
        if profile is None or self._budget_w is None:
            return f_max
        key = (profile.name, core, self._budget_w)
        cached = self._profile_freq_cache.get(key)
        if cached is not None:
            return cached
        levels = self.ctx.dvfs.levels
        chosen = levels[0]
        for mid in range(len(levels) - 1, -1, -1):
            compute, stall = self.ctx.perf.activity_fractions(
                profile, core, levels[mid]
            )
            power = self.ctx.power_model.core_power_w(
                profile.p_dyn_ref_w, levels[mid], compute, stall
            )
            if power <= self._budget_w:
                chosen = levels[mid]
                break
        self._profile_freq_cache[key] = chosen
        return chosen

    def _measured_frequency(self, thread_id: str, core: int) -> float:
        """Highest step whose measured-power projection fits the budget."""
        dvfs = self.ctx.dvfs
        f_max = self.ctx.config.dvfs.f_max_hz
        try:
            # burst-reactive: a phase change shows up in the last sample a
            # full window before it moves the average
            measured = max(
                self.ctx.thread_power_w(thread_id),
                self.ctx.thread_recent_power_w(thread_id),
            )
        except (KeyError, RuntimeError):
            return f_max  # no history yet: start optimistic at f_max
        f_cur = float(self._core_freq[core])
        if self._budget_w is None:
            return f_max
        # binary search over the quantized levels (power monotone in f)
        levels = dvfs.levels
        lo, hi, best = 0, len(levels) - 1, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._power_at(measured, f_cur, levels[mid]) <= self._budget_w:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return levels[best]

    def _governor_frequency(self, thread_id: str, core: int) -> float:
        """Dispatch to the configured governor variant."""
        if self.governor == "profile":
            return self._profile_frequency(thread_id, core)
        return self._measured_frequency(thread_id, core)

    def decide(self, now_s: float) -> SchedulerDecision:
        placements = dict(self._placer.placements)
        freqs = np.full(self.ctx.n_cores, self.ctx.config.dvfs.f_max_hz)
        for thread_id, core in placements.items():
            freqs[core] = self._governor_frequency(thread_id, core)
        self._core_freq = freqs
        return SchedulerDecision(
            placements=placements,
            frequencies=freqs,
            waiting=self.waiting_threads(),
        )

    def metrics(self) -> Mapping[str, float]:
        """TSP-budget state for the observability snapshot."""
        data = dict(super().metrics())
        if self._budget_w is not None:
            data["tsp_budget_w"] = float(self._budget_w)
        if self._core_freq is not None and self._placer is not None:
            occupied = self._placer.occupied_cores()
            f_max = self.ctx.config.dvfs.f_max_hz
            data["throttled_cores"] = float(
                sum(1 for c in occupied if self._core_freq[c] < f_max)
            )
        return data

"""HotPotato unified with DVFS (the paper's announced future work).

Section VII: "We plan to unify synchronous task rotation with DVFS for even
more efficient thermal management."  This scheduler implements the natural
unification: rotation remains the primary knob (placement and rotation
interval chosen exactly as HotPotato does), but when the analytic peak of
the best achievable rotation still exceeds the threshold — the overload
regime where vanilla HotPotato must fall back on hardware DTM — a *uniform
frequency scale* is applied to every thread such that the analytically
predicted peak lands at ``T_DTM - Delta``.

Because the RC model is linear in power, the required power scale is simply
``(T_target - T_amb) / (T_peak - T_amb)`` (applied to the dynamic share
above the idle floor); the per-core frequency is then the highest 100 MHz
step whose power-scaling factor ``f V(f)^2 / (f_max V_max^2)`` does not
exceed it.  Graceful frequency scaling replaces DTM's brutal
crash-to-f_min duty cycling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import SchedulerDecision
from .hotpotato_runtime import HotPotatoScheduler


class HotPotatoDvfsScheduler(HotPotatoScheduler):
    """Rotation-first thermal management with a DVFS safety valve."""

    name = "hotpotato-dvfs"

    #: Re-evaluate the analytic peak at most this often [intervals]; the
    #: chosen frequency is held in between.
    _PEAK_EVAL_SPACING = 4

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._throttle_f_hz: Optional[float] = None
        self._intervals_since_eval = 0

    def _measured_power(self, thread_id: str) -> float:
        """Refer the measured power back to f_max.

        HotPotato's estimates (and hence its analytic peak) stay in
        f_max-equivalent terms, so applying the throttle does not feed back
        into the placement/rotation decisions — the two knobs decouple.
        """
        measured = self.ctx.thread_power_w(thread_id)
        if self._throttle_f_hz is None:
            return measured
        idle = self.ctx.power_model.idle_power_w()
        dynamic = max(0.0, measured - idle)
        return idle + dynamic / self._power_scale(self._throttle_f_hz)

    def _power_scale(self, f_hz: float) -> float:
        """Dynamic-power scaling factor of ``f`` relative to f_max."""
        dvfs = self.ctx.config.dvfs
        return (f_hz * dvfs.voltage(f_hz) ** 2) / (
            dvfs.f_max_hz * dvfs.voltage(dvfs.f_max_hz) ** 2
        )

    def _select_throttle_frequency(self) -> Optional[float]:
        """The uniform frequency that makes the rotation thermally safe.

        Returns ``None`` when the rotation alone is already safe.
        """
        if self.hotpotato.n_threads == 0:
            return None
        thermal = self.ctx.config.thermal
        peak_c = self.hotpotato.peak_temperature()
        target_c = thermal.dtm_threshold_c - thermal.headroom_delta_c
        if peak_c <= target_c:
            return None
        # linearity: scale the above-ambient rise down to the target
        required = (target_c - thermal.ambient_c) / (peak_c - thermal.ambient_c)
        levels = self.ctx.dvfs.levels
        for f_hz in reversed(levels):  # highest first
            if self._power_scale(f_hz) <= required:
                return f_hz
        return levels[0]

    def decide(self, now_s: float) -> SchedulerDecision:
        decision = super().decide(now_s)
        self._intervals_since_eval += 1
        if (
            self._intervals_since_eval >= self._PEAK_EVAL_SPACING
            or self._throttle_f_hz is None
        ):
            self._throttle_f_hz = self._select_throttle_frequency()
            self._intervals_since_eval = 0
        if self._throttle_f_hz is not None:
            freqs = np.asarray(decision.frequencies, dtype=float).copy()
            for core in decision.placements.values():
                freqs[core] = min(freqs[core], self._throttle_f_hz)
            decision = SchedulerDecision(
                placements=decision.placements,
                frequencies=freqs,
                waiting=decision.waiting,
                tau_s=decision.tau_s,
                annotations={"throttle_f_ghz": self._throttle_f_hz / 1e9},
            )
        return decision

"""Schedulers: HotPotato plus the paper's baselines."""

from .async_migration import AsyncMigrationScheduler
from .base import Scheduler, SchedulerDecision
from .fixed_rotation import FixedRotationScheduler
from .hotpotato_dvfs import HotPotatoDvfsScheduler
from .hotpotato_runtime import HotPotatoScheduler
from .naive import PeakFrequencyScheduler, StaticPlacer
from .pcgov import PCGovScheduler
from .pcmig import PCMigScheduler
from .qos_aware import QoSAwareScheduler

__all__ = [
    "AsyncMigrationScheduler",
    "FixedRotationScheduler",
    "HotPotatoDvfsScheduler",
    "HotPotatoScheduler",
    "PCGovScheduler",
    "PCMigScheduler",
    "PeakFrequencyScheduler",
    "QoSAwareScheduler",
    "Scheduler",
    "SchedulerDecision",
    "StaticPlacer",
]

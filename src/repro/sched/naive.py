"""Naive baseline schedulers.

- :class:`PeakFrequencyScheduler` — performance-greedy static placement at
  maximum frequency with **no** thermal management beyond hardware DTM.
  This is the "thermally unsustainable" reference of Fig. 2(a).
- :class:`StaticPlacer` — the shared placement policy: threads of arriving
  tasks go to the free cores with the lowest AMD (best S-NUCA performance),
  ties broken by core id.  PCGov/PCMig reuse it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..workload.task import Task
from .base import Scheduler, SchedulerDecision


class StaticPlacer:
    """Lowest-AMD-first assignment of threads to free cores."""

    def __init__(self, amd: np.ndarray):
        self._amd = np.asarray(amd, dtype=float)
        self._order = np.lexsort((np.arange(len(amd)), self._amd))
        self._occupant: Dict[int, str] = {}

    @property
    def placements(self) -> Dict[str, int]:
        """Current thread -> core mapping."""
        return {thread: core for core, thread in self._occupant.items()}

    def occupied_cores(self) -> List[int]:
        """Cores currently holding a thread."""
        return sorted(self._occupant)

    def free_cores(self) -> List[int]:
        """Free cores in placement-preference (ascending AMD) order."""
        return [int(c) for c in self._order if int(c) not in self._occupant]

    def place_task(self, task: Task) -> None:
        """Assign every thread of ``task`` to the best free cores."""
        free = self.free_cores()
        if len(free) < task.n_threads:
            raise ValueError(
                f"not enough free cores for task {task.task_id} "
                f"({task.n_threads} needed, {len(free)} free)"
            )
        for thread, core in zip(task.threads, free):
            self._occupant[core] = thread.thread_id

    def release_task(self, task: Task) -> None:
        """Free the cores of a finished task."""
        ids = {thread.thread_id for thread in task.threads}
        self._occupant = {
            core: thread
            for core, thread in self._occupant.items()
            if thread not in ids
        }

    def move(self, thread_id: str, dst_core: int) -> None:
        """Relocate one thread to a free core."""
        if dst_core in self._occupant:
            raise ValueError(f"core {dst_core} is occupied")
        src = next(
            core for core, t in self._occupant.items() if t == thread_id
        )
        del self._occupant[src]
        self._occupant[dst_core] = thread_id

    def core_of(self, thread_id: str) -> int:
        """Core currently hosting ``thread_id``."""
        for core, thread in self._occupant.items():
            if thread == thread_id:
                return core
        raise KeyError(thread_id)

    def sync(self, placements: Dict[str, int]) -> None:
        """Overwrite the assignment wholesale (migration-failure repair).

        The engine's repaired placement map is authoritative after an
        aborted hop; rebuilding beats replaying individual moves, which
        could transiently collide.
        """
        occupant: Dict[int, str] = {}
        for thread, core in placements.items():
            if core in occupant:
                raise ValueError(f"core {core} assigned twice in sync")
            occupant[core] = thread
        self._occupant = occupant


class PeakFrequencyScheduler(Scheduler):
    """Everything at f_max, static lowest-AMD placement, DTM-only safety."""

    name = "peak-frequency"

    def __init__(self) -> None:
        super().__init__()
        self._placer: Optional[StaticPlacer] = None

    def attach(self, ctx) -> None:
        super().attach(ctx)
        self._placer = StaticPlacer(ctx.rings.amd)

    def _can_admit(self, task: Task) -> bool:
        return len(self._placer.free_cores()) >= task.n_threads

    def _admit(self, task: Task, now_s: float) -> None:
        self._placer.place_task(task)

    def _release(self, task: Task, now_s: float) -> None:
        self._placer.release_task(task)

    def decide(self, now_s: float) -> SchedulerDecision:
        freqs = np.full(self.ctx.n_cores, self.ctx.config.dvfs.f_max_hz)
        return SchedulerDecision(
            placements=dict(self._placer.placements),
            frequencies=freqs,
            waiting=self.waiting_threads(),
        )

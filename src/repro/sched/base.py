"""Scheduler interface.

A scheduler reacts to task arrivals and completions and, once per simulator
interval, produces a :class:`SchedulerDecision`: where every admitted thread
runs and at what frequency each core is clocked.  The engine executes the
decision, charging migration penalties for placement changes and letting
hardware DTM override frequencies when a core crosses the threshold.

**Admission queueing** (open systems, Fig. 4b): when a task arrives and the
chip lacks free cores, the base class queues it FIFO; queued tasks make no
progress (their threads are reported as ``waiting``) and are admitted as
capacity frees up.  Response time then naturally includes queueing delay.
Subclasses implement the three primitives ``_can_admit`` / ``_admit`` /
``_release`` plus ``decide``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set

import numpy as np

from ..workload.task import Task

if TYPE_CHECKING:  # import cycle: the engine imports this module
    from ..sim.context import SimContext


@dataclass
class SchedulerDecision:
    """One interval's placement and frequency plan."""

    #: thread id -> core id; every admitted thread must appear exactly once.
    placements: Dict[str, int]
    #: per-core frequency [Hz], shape (n_cores,).
    frequencies: np.ndarray
    #: thread ids of queued (not yet admitted) tasks.
    waiting: Set[str] = field(default_factory=set)
    #: current rotation interval for telemetry (None if not rotating).
    tau_s: Optional[float] = None
    #: free-form scheduler telemetry merged into the metrics.
    annotations: Dict[str, float] = field(default_factory=dict)


class Scheduler(abc.ABC):
    """Base class for thermal-aware schedulers (with admission queueing)."""

    name: str = "scheduler"

    def __init__(self) -> None:
        self.ctx: Optional["SimContext"] = None
        self._queue: List[Task] = []

    def attach(self, ctx: "SimContext") -> None:
        """Bind the scheduler to a platform; called once before the run."""
        self.ctx = ctx

    # -- arrival / completion with queueing ------------------------------------

    def on_task_arrival(self, task: Task, now_s: float) -> None:
        """Admit the task, or queue it if the chip is full."""
        if not self._queue and self._can_admit(task):
            self._admit(task, now_s)
        else:
            self._queue.append(task)

    def on_task_complete(self, task: Task, now_s: float) -> None:
        """Release the task's cores, then drain the queue FIFO."""
        self._release(task, now_s)
        while self._queue and self._can_admit(self._queue[0]):
            self._admit(self._queue.pop(0), now_s)

    def waiting_threads(self) -> Set[str]:
        """Thread ids of all queued tasks."""
        return {
            thread.thread_id for task in self._queue for thread in task.threads
        }

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting for admission."""
        return len(self._queue)

    # -- subclass primitives ---------------------------------------------------

    @abc.abstractmethod
    def _can_admit(self, task: Task) -> bool:
        """True when the task's threads fit on free cores right now."""

    @abc.abstractmethod
    def _admit(self, task: Task, now_s: float) -> None:
        """Place the task's threads."""

    @abc.abstractmethod
    def _release(self, task: Task, now_s: float) -> None:
        """Free the task's cores."""

    @abc.abstractmethod
    def decide(self, now_s: float) -> SchedulerDecision:
        """Produce the placement/frequency plan for the next interval."""

    def preferred_interval_s(self) -> Optional[float]:
        """Step size the scheduler wants the engine to use (None = default).

        Rotating schedulers return their rotation interval so that epoch
        boundaries align with simulation intervals.
        """
        return None

    # -- observability ---------------------------------------------------------

    def metrics(self) -> Mapping[str, float]:
        """Internal counters this scheduler publishes at run end.

        When the engine runs with a metrics registry
        (``SystemConfig.obs.metrics``, see ``docs/observability.md``), each
        returned entry becomes a ``sched.<key>`` gauge in the result's
        metrics snapshot.  The base implementation reports the admission
        queue depth; subclasses should extend this dict with their own
        decision counters (rotation epochs, refreshes, migration triggers).
        """
        return {"queue_length": float(self.queue_length)}

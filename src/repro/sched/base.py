"""Scheduler interface.

A scheduler reacts to task arrivals and completions and, once per simulator
interval, produces a :class:`SchedulerDecision`: where every admitted thread
runs and at what frequency each core is clocked.  The engine executes the
decision, charging migration penalties for placement changes and letting
hardware DTM override frequencies when a core crosses the threshold.

**Admission queueing** (open systems, Fig. 4b): when a task arrives and the
chip lacks free cores, the base class queues it FIFO; queued tasks make no
progress (their threads are reported as ``waiting``) and are admitted as
capacity frees up.  Response time then naturally includes queueing delay.
Subclasses implement the three primitives ``_can_admit`` / ``_admit`` /
``_release`` plus ``decide``.

**Graceful degradation** (``docs/faults.md``): under fault injection,
schedulers read temperatures through :meth:`Scheduler.observed_temperatures`
(the sensor shim, never raw ground truth) and the engine passes every
decision through :meth:`Scheduler.finalize_decision`, which walks the
degradation ladder on sensor staleness — ``normal`` -> ``degraded``
(subclasses widen safety margins via :meth:`Scheduler.on_degradation_change`)
-> ``safe-park`` (all cores clamped to ``f_min`` until readings return).
Aborted migration hops come back through :meth:`Scheduler.repair_decision`,
whose base implementation pins the failed threads to their source cores and
relocates any displaced threads to free cores in AMD order.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set

import numpy as np

from ..workload.task import Task

if TYPE_CHECKING:  # import cycle: the engine imports this module
    from ..sim.context import SimContext


#: Degradation ladder, mildest first (``docs/faults.md``).
DEGRADATION_MODES = ("normal", "degraded", "safe-park")


@dataclass(frozen=True)
class MigrationFailure:
    """One aborted migration hop: the thread never left ``src_core``."""

    thread_id: str
    src_core: int
    dst_core: int


@dataclass
class SchedulerDecision:
    """One interval's placement and frequency plan."""

    #: thread id -> core id; every admitted thread must appear exactly once.
    placements: Dict[str, int]
    #: per-core frequency [Hz], shape (n_cores,).
    frequencies: np.ndarray
    #: thread ids of queued (not yet admitted) tasks.
    waiting: Set[str] = field(default_factory=set)
    #: current rotation interval for telemetry (None if not rotating).
    tau_s: Optional[float] = None
    #: free-form scheduler telemetry merged into the metrics.
    annotations: Dict[str, float] = field(default_factory=dict)
    #: degradation mode this decision was finalized under (``None`` when
    #: fault injection is off and the contract never ran).
    degradation: Optional[str] = None


class Scheduler(abc.ABC):
    """Base class for thermal-aware schedulers (with admission queueing)."""

    name: str = "scheduler"

    def __init__(self) -> None:
        self.ctx: Optional["SimContext"] = None
        self._queue: List[Task] = []
        #: current degradation mode (None until the first finalize under
        #: fault injection; stays None on the fault-free fast path)
        self._degradation_mode: Optional[str] = None
        self._migration_failure_count = 0
        self._degraded_intervals = 0
        self._parked_intervals = 0

    def attach(self, ctx: "SimContext") -> None:
        """Bind the scheduler to a platform; called once before the run."""
        self.ctx = ctx

    # -- arrival / completion with queueing ------------------------------------

    def on_task_arrival(self, task: Task, now_s: float) -> None:
        """Admit the task, or queue it if the chip is full."""
        if not self._queue and self._can_admit(task):
            self._admit(task, now_s)
        else:
            self._queue.append(task)

    def on_task_complete(self, task: Task, now_s: float) -> None:
        """Release the task's cores, then drain the queue FIFO."""
        self._release(task, now_s)
        while self._queue and self._can_admit(self._queue[0]):
            self._admit(self._queue.pop(0), now_s)

    def waiting_threads(self) -> Set[str]:
        """Thread ids of all queued tasks."""
        return {
            thread.thread_id for task in self._queue for thread in task.threads
        }

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting for admission."""
        return len(self._queue)

    # -- subclass primitives ---------------------------------------------------

    @abc.abstractmethod
    def _can_admit(self, task: Task) -> bool:
        """True when the task's threads fit on free cores right now."""

    @abc.abstractmethod
    def _admit(self, task: Task, now_s: float) -> None:
        """Place the task's threads."""

    @abc.abstractmethod
    def _release(self, task: Task, now_s: float) -> None:
        """Free the task's cores."""

    @abc.abstractmethod
    def decide(self, now_s: float) -> SchedulerDecision:
        """Produce the placement/frequency plan for the next interval."""

    def preferred_interval_s(self) -> Optional[float]:
        """Step size the scheduler wants the engine to use (None = default).

        Rotating schedulers return their rotation interval so that epoch
        boundaries align with simulation intervals.
        """
        return None

    # -- sensor readings and graceful degradation ------------------------------

    def observed_temperatures(self) -> np.ndarray:
        """Core temperatures as this scheduler is allowed to see them.

        With perfect sensors (no fault injection) this is the ground
        truth; under fault injection it is the sensor shim's view — noisy,
        biased, possibly latched, with dropouts already replaced by the
        last-known-good reading per core.  The result is always finite:
        NaN/Inf never leak into scheduler arithmetic.
        """
        sensors = self.ctx.sensors
        if sensors is None:
            return self.ctx.core_temperatures_c()
        return sensors.observed()

    @property
    def degradation_mode(self) -> Optional[str]:
        """Current rung of the degradation ladder (None = contract inactive)."""
        return self._degradation_mode

    def finalize_decision(
        self, decision: SchedulerDecision, now_s: float
    ) -> SchedulerDecision:
        """Engine hook: apply the graceful-degradation contract.

        Runs after :meth:`decide` (and after any migration repair) when
        fault injection is active.  Sensor staleness selects the mode:

        - ``normal`` — readings are fresh; nothing changes;
        - ``degraded`` — readings are stale beyond
          ``faults.degraded_staleness_s``; subclasses react in
          :meth:`on_degradation_change` (HotPotato widens its Algorithm-1
          margin ``delta``) while running on last-known-good readings;
        - ``safe-park`` — readings are stale beyond
          ``faults.park_staleness_s``; every core is clamped to ``f_min``
          until the sensors recover (placements are untouched, so threads
          crawl instead of stopping).
        """
        sensors = self.ctx.sensors if self.ctx is not None else None
        if sensors is None:
            return decision
        faults = self.ctx.config.faults
        staleness = sensors.max_staleness_s(now_s)
        if staleness >= faults.park_staleness_s:
            mode = "safe-park"
        elif staleness >= faults.degraded_staleness_s:
            mode = "degraded"
        else:
            mode = "normal"
        previous = self._degradation_mode
        if mode != previous:
            self._degradation_mode = mode
            if previous is not None or mode != "normal":
                self.on_degradation_change(previous or "normal", mode, now_s)
        if mode == "degraded":
            self._degraded_intervals += 1
        elif mode == "safe-park":
            self._parked_intervals += 1
            f_min = self.ctx.config.dvfs.f_min_hz
            decision.frequencies = np.minimum(decision.frequencies, f_min)
        decision.degradation = mode
        decision.annotations["sensor_staleness_s"] = staleness
        return decision

    def on_degradation_change(
        self, old_mode: str, new_mode: str, now_s: float
    ) -> None:
        """Hook: the degradation ladder moved.  Default: no reaction."""

    def _core_preference_order(self) -> List[int]:
        """All cores in placement-preference (ascending AMD) order."""
        amd = np.asarray(self.ctx.rings.amd, dtype=float)
        return [int(c) for c in np.lexsort((np.arange(len(amd)), amd))]

    def repair_decision(
        self,
        decision: SchedulerDecision,
        failures: List[MigrationFailure],
        now_s: float,
    ) -> SchedulerDecision:
        """Engine hook: re-plan after aborted migration hops.

        Every failed thread stays pinned on its source core; any other
        thread the decision had routed onto one of those (now still
        occupied) source cores is displaced to the best free core in AMD
        order.  The repair preserves the placement count, so it is always
        feasible.  Subclasses that keep their own placement state sync it
        in :meth:`on_migration_failure`.
        """
        pinned = {f.thread_id: f.src_core for f in failures}
        taken = set(pinned.values())
        repaired: Dict[str, int] = {}
        displaced: List[str] = []
        for thread, core in decision.placements.items():
            if thread in pinned:
                repaired[thread] = pinned[thread]
            elif core in taken:
                displaced.append(thread)
            else:
                repaired[thread] = core
                taken.add(core)
        free = [c for c in self._core_preference_order() if c not in taken]
        for thread in sorted(displaced):
            core = free.pop(0)
            repaired[thread] = core
            taken.add(core)
        decision.placements = repaired
        self._migration_failure_count += len(failures)
        self.on_migration_failure(failures, repaired, now_s)
        return decision

    def on_migration_failure(
        self,
        failures: List[MigrationFailure],
        placements: Dict[str, int],
        now_s: float,
    ) -> None:
        """Hook: hops aborted and ``placements`` is the repaired plan.

        Subclasses with internal placement state (placers, rotation
        schedules) bring it back in line with reality here.  Default: no
        reaction.
        """

    # -- observability ---------------------------------------------------------

    def metrics(self) -> Mapping[str, float]:
        """Internal counters this scheduler publishes at run end.

        When the engine runs with a metrics registry
        (``SystemConfig.obs.metrics``, see ``docs/observability.md``), each
        returned entry becomes a ``sched.<key>`` gauge in the result's
        metrics snapshot.  The base implementation reports the admission
        queue depth; subclasses should extend this dict with their own
        decision counters (rotation epochs, refreshes, migration triggers).
        """
        data = {"queue_length": float(self.queue_length)}
        if self._degradation_mode is not None:
            data["degradation_mode"] = float(
                DEGRADATION_MODES.index(self._degradation_mode)
            )
            data["degraded_intervals"] = float(self._degraded_intervals)
            data["parked_intervals"] = float(self._parked_intervals)
        if self._migration_failure_count:
            data["migration_failures"] = float(self._migration_failure_count)
        return data

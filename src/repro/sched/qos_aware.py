"""QoS/energy-aware HotPotato variant for open-system traffic.

:class:`QoSAwareScheduler` extends the paper's scheduler
(:class:`~repro.sched.hotpotato_runtime.HotPotatoScheduler`) with the two
policies the companion QoS work (PAPERS.md) adds on top of thread
rotation:

**Energy relaxation.**  Algorithm 2 picks the slowest *analytically*
sustainable rotation interval; the analytic estimates are conservative,
so a lightly loaded chip often rotates faster than its observed
temperatures require.  When the sensor-observed thermal headroom
(``T_DTM - max(T_observed)``) stays at or above ``energy_headroom_c``
for ``relax_patience`` consecutive decisions, the scheduler raises
the heuristic's ``tau_bias`` by one ladder rung — slower rotation, fewer
migrations, less migration energy — and re-optimizes.  Any decision that
sees the headroom dip below the margin drops the bias back to zero
immediately; hardware DTM remains the backstop throughout.

**Priority admission and overload shedding.**  The admission queue is
kept in priority order (:mod:`repro.workload.qos`; ties arrival-first),
and the *traffic mode* reuses the naming of the ``repro.faults``
degradation ladder (``normal`` / ``degraded`` / ``safe-park``) driven by
queue pressure instead of sensor staleness:

- ``normal`` — queued threads < ``overload_queue_threads`` (default: the
  core count): every task is admissible;
- ``degraded`` — queued threads at or above that threshold: best-effort
  tasks are *parked* (skipped for admission; they keep queueing);
- ``safe-park`` — queued threads at or above ``park_queue_threads``
  (default: twice the core count): only critical tasks are admitted.

Parked tasks are shed softly: they stay queued and become admissible
again as soon as completions shrink the queue below the threshold, so
light load always drains to ``normal``.  An anti-starvation rule keeps
an all-parked queue from self-locking: when the chip is completely idle
the best queued task is admitted regardless of mode (see
:meth:`QoSAwareScheduler._drain_queue`).  The current mode, parked count
and relaxation state are published as ``sched.qos_*`` metrics and
per-decision annotations.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..workload.qos import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
    priority_of,
)
from ..workload.task import Task
from .base import DEGRADATION_MODES, SchedulerDecision
from .hotpotato_runtime import _REFRESH_SPACING, HotPotatoScheduler

#: Minimum admissible priority per traffic mode (the degradation-ladder
#: names of ``repro.faults``, repurposed for queue pressure).
_MIN_PRIORITY_BY_MODE = {
    "normal": PRIORITY_BEST_EFFORT,
    "degraded": PRIORITY_NORMAL,
    "safe-park": PRIORITY_CRITICAL,
}


class QoSAwareScheduler(HotPotatoScheduler):
    """HotPotato plus energy relaxation and priority-aware shedding."""

    name = "qos"

    def __init__(
        self,
        headroom_delta_c: Optional[float] = None,
        initial_tau_s: Optional[float] = None,
        energy_headroom_c: float = 6.0,
        relax_patience: int = 8,
        overload_queue_threads: Optional[int] = None,
        park_queue_threads: Optional[int] = None,
    ) -> None:
        super().__init__(
            headroom_delta_c=headroom_delta_c, initial_tau_s=initial_tau_s
        )
        if energy_headroom_c <= 0:
            raise ValueError("energy headroom must be positive")
        if relax_patience < 1:
            raise ValueError("relax patience must be at least 1")
        self.energy_headroom_c = float(energy_headroom_c)
        self.relax_patience = int(relax_patience)
        self._overload_override = overload_queue_threads
        self._park_override = park_queue_threads
        self._headroom_streak = 0
        self._traffic_mode = "normal"
        self._relaxed_decisions = 0
        self._relax_events = 0
        self._parked_peak = 0
        self._shed_decisions = 0

    def attach(self, ctx) -> None:
        super().attach(ctx)
        n_cores = ctx.n_cores
        self.overload_queue_threads = (
            self._overload_override
            if self._overload_override is not None
            else n_cores
        )
        self.park_queue_threads = (
            self._park_override
            if self._park_override is not None
            else 2 * n_cores
        )
        if self.park_queue_threads < self.overload_queue_threads:
            raise ValueError(
                "park threshold must be at least the overload threshold"
            )

    # -- priority admission / overload shedding ---------------------------------

    def _queued_threads(self) -> int:
        return sum(task.n_threads for task in self._queue)

    def _update_traffic_mode(self) -> None:
        queued = self._queued_threads()
        if queued >= self.park_queue_threads:
            self._traffic_mode = "safe-park"
        elif queued >= self.overload_queue_threads:
            self._traffic_mode = "degraded"
        else:
            self._traffic_mode = "normal"

    def _admissible(self, task: Task) -> bool:
        minimum = _MIN_PRIORITY_BY_MODE[self._traffic_mode]
        return priority_of(task.qos) >= minimum

    def _parked_tasks(self) -> List[Task]:
        return [task for task in self._queue if not self._admissible(task)]

    def _chip_is_idle(self) -> bool:
        """True when no admitted thread occupies any core."""
        free = sum(
            len(self.hotpotato.free_slots(ring))
            for ring in range(self.ctx.rings.n_rings)
        )
        return free >= self.ctx.n_cores

    def _drain_queue(self, now_s: float) -> None:
        """Admit every admissible queued task that fits, priority first.

        The queue is resorted on each drain (highest priority first, then
        arrival time, then task id — all deterministic); tasks parked by
        the current traffic mode are skipped, and a task whose thread
        count does not fit is passed over in favour of smaller admissible
        ones behind it (greedy backfill).

        **Anti-starvation rule:** if every queued task is parked while the
        chip sits completely idle, the best queued task that fits is
        admitted anyway — an idle chip serves nobody by parking, and
        without this rule an all-best-effort queue would self-lock (its
        own queue pressure holds the mode that parks it).  Each such
        admission shrinks the queue, so pressure eventually falls below
        the threshold and the mode relaxes back to ``normal``.
        """
        self._update_traffic_mode()
        self._queue.sort(
            key=lambda t: (-priority_of(t.qos), t.arrival_time_s, t.task_id)
        )
        progressed = True
        while progressed:
            progressed = False
            for task in self._queue:
                if not self._admissible(task):
                    continue
                if self._can_admit(task):
                    self._queue.remove(task)
                    self._admit(task, now_s)
                    # admissions shrink the queue, which may relax the
                    # mode and un-park lower-priority tasks — recompute
                    self._update_traffic_mode()
                    progressed = True
                    break
            if not progressed and self._queue and self._chip_is_idle():
                for task in self._queue:
                    if self._can_admit(task):
                        self._queue.remove(task)
                        self._admit(task, now_s)
                        self._update_traffic_mode()
                        progressed = True
                        break

    def on_task_arrival(self, task: Task, now_s: float) -> None:
        self._queue.append(task)
        self._drain_queue(now_s)
        self._parked_peak = max(self._parked_peak, len(self._parked_tasks()))

    def on_task_complete(self, task: Task, now_s: float) -> None:
        self._release(task, now_s)
        self._drain_queue(now_s)

    # -- energy relaxation -------------------------------------------------------

    def _update_energy_relaxation(self, now_s: float) -> None:
        headroom = self.ctx.config.thermal.dtm_threshold_c - float(
            self.observed_temperatures().max()
        )
        if headroom >= self.energy_headroom_c:
            self._headroom_streak += 1
        else:
            self._headroom_streak = 0
            if self.hotpotato.tau_bias:
                # headroom gone: return to the paper's selection now
                self.hotpotato.tau_bias = 0
                self._settled = False
                self._intervals_since_refresh = _REFRESH_SPACING
            return
        if (
            self._headroom_streak >= self.relax_patience
            and self.hotpotato.tau_bias == 0
        ):
            self.hotpotato.tau_bias = 1
            self._relax_events += 1
            self._settled = False
            self._intervals_since_refresh = _REFRESH_SPACING

    def decide(self, now_s: float) -> SchedulerDecision:
        self._update_energy_relaxation(now_s)
        decision = super().decide(now_s)
        if self.hotpotato.tau_bias:
            self._relaxed_decisions += 1
        parked = len(self._parked_tasks())
        if parked:
            self._shed_decisions += 1
        decision.annotations["qos_traffic_mode"] = float(
            DEGRADATION_MODES.index(self._traffic_mode)
        )
        decision.annotations["qos_parked_tasks"] = float(parked)
        decision.annotations["qos_tau_relaxed"] = float(
            1 if self.hotpotato.tau_bias else 0
        )
        return decision

    def metrics(self) -> Mapping[str, float]:
        """QoS policy counters, on top of the HotPotato ones."""
        data = dict(super().metrics())
        data["qos_traffic_mode"] = float(
            DEGRADATION_MODES.index(self._traffic_mode)
        )
        data["qos_parked_tasks"] = float(len(self._parked_tasks()))
        data["qos_parked_peak"] = float(self._parked_peak)
        data["qos_shed_decisions"] = float(self._shed_decisions)
        data["qos_relaxed_decisions"] = float(self._relaxed_decisions)
        data["qos_relax_events"] = float(self._relax_events)
        data["qos_tau_relaxed"] = float(1 if self.hotpotato.tau_bias else 0)
        return data

"""Fixed synchronous rotation (the paper's motivational mechanism).

Fig. 2(c) of the paper rotates the two *blackscholes* threads over the four
centre cores at a fixed 0.5 ms interval — no adaptivity, no DVFS.  This
scheduler reproduces exactly that: threads of arriving tasks fill the slots
of a fixed core set and rotate synchronously forever.  It is the pure
mechanism (rotation) stripped of the policy (HotPotato), and doubles as the
ablation baseline for rotation-interval sweeps.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from .. import units
from ..workload.task import Task
from .base import Scheduler, SchedulerDecision


class FixedRotationScheduler(Scheduler):
    """Rotate all threads over a fixed core set at a fixed interval."""

    name = "fixed-rotation"

    def __init__(
        self, cores: Optional[Sequence[int]] = None, tau_s: float = units.ms(0.5)
    ) -> None:
        super().__init__()
        if tau_s <= 0:
            raise ValueError("rotation interval must be positive")
        self.tau_s = tau_s
        self._cores_arg = cores
        self._cores: List[int] = []
        self._slots: List[Optional[str]] = []

    def attach(self, ctx) -> None:
        super().attach(ctx)
        if self._cores_arg is not None:
            self._cores = list(self._cores_arg)
        else:
            # default: the innermost AMD ring (the paper's centre cores)
            self._cores = list(ctx.rings.ring(0))
        if len(set(self._cores)) != len(self._cores):
            raise ValueError("rotation core set contains duplicates")
        self._slots = [None] * len(self._cores)

    def _can_admit(self, task: Task) -> bool:
        free = sum(1 for s in self._slots if s is None)
        return free >= task.n_threads

    def _admit(self, task: Task, now_s: float) -> None:
        free = [i for i, s in enumerate(self._slots) if s is None]
        for thread, slot in zip(task.threads, free):
            self._slots[slot] = thread.thread_id

    def _release(self, task: Task, now_s: float) -> None:
        ids = {thread.thread_id for thread in task.threads}
        self._slots = [None if s in ids else s for s in self._slots]

    def preferred_interval_s(self) -> Optional[float]:
        return self.tau_s

    def decide(self, now_s: float) -> SchedulerDecision:
        epoch = int(now_s / self.tau_s + 1e-9)
        size = len(self._cores)
        placements = {
            thread: self._cores[(slot + epoch) % size]
            for slot, thread in enumerate(self._slots)
            if thread is not None
        }
        freqs = np.full(self.ctx.n_cores, self.ctx.config.dvfs.f_max_hz)
        self._last_epoch = epoch
        return SchedulerDecision(
            placements=placements,
            frequencies=freqs,
            waiting=self.waiting_threads(),
            tau_s=self.tau_s,
        )

    def metrics(self) -> Mapping[str, float]:
        """Rotation state for the observability snapshot."""
        data = dict(super().metrics())
        data["tau_s"] = self.tau_s
        data["rotation_epochs"] = float(getattr(self, "_last_epoch", 0))
        return data

"""PCMig baseline: PCGov plus asynchronous, on-demand thread migrations.

PCMig (Rapp et al., DATE 2019 / TC 2020) extends PCGov with
prediction-driven thread migrations: when a core is predicted to violate the
thermal threshold soon, its thread is migrated away pre-emptively instead of
(or in addition to) slowing it down.  The published predictor is a neural
network trained on simulator traces; **our substitution uses the RC thermal
model itself as the predictor** (a short-horizon exact transient under the
currently observed power map), which upper-bounds the NN's accuracy — the
baseline here is therefore at least as strong as the published one.

Migrations are asynchronous and on-demand ("a measure of last resort",
paper Section I): at most a few per interval, each moving the thread of the
most endangered core to the coolest free core.

**Phase mapping** — how each decision phase relates to the published
baseline and to the source paper's framing (the contrast HotPotato's
Algorithm 2 is evaluated against):

====================  ======================================================
phase                 implementation
====================  ======================================================
placement             inherited from :class:`~repro.sched.pcgov.PCGovScheduler`
                      via :class:`~repro.sched.naive.StaticPlacer` —
                      lowest-AMD-first static assignment (PCGov mapping rule)
violation prediction  :meth:`PCMigScheduler._predicted_core_temps` — exact RC
                      transient ``prediction_horizon_s`` ahead under the
                      currently observed power map (substitutes the published
                      NN predictor, upper-bounding its accuracy)
migration trigger     :meth:`PCMigScheduler._maybe_migrate` — the *asynchronous,
                      on-demand* migration the source paper contrasts with its
                      *synchronous* rotations: fire only when a core is
                      predicted above ``T_DTM - guard_band_c``, at most
                      ``_MAX_MIGRATIONS_PER_INTERVAL`` per interval
DVFS enforcement      inherited PCGov governor — per-core TSP budget enforced
                      at 100 MHz steps after migrations rebalanced the map
====================  ======================================================

Parameters (constructor): ``prediction_horizon_s`` — look-ahead of the
violation check (default 5 ms, the published reaction horizon);
``guard_band_c`` — trigger margin below the DTM threshold (default 1 degC).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from .. import units
from .base import SchedulerDecision
from .pcgov import PCGovScheduler

#: Prediction horizon [s]: how far ahead the violation check looks.
_PREDICTION_HORIZON_S = units.ms(5.0)
#: Trigger guard band [degC] below the DTM threshold.
_GUARD_BAND_C = 1.0
#: Maximum migrations performed per interval (asynchronous/on-demand).
_MAX_MIGRATIONS_PER_INTERVAL = 2


class PCMigScheduler(PCGovScheduler):
    """The paper's state-of-the-art baseline (Section VI)."""

    name = "pcmig"

    def __init__(
        self,
        prediction_horizon_s: float = _PREDICTION_HORIZON_S,
        guard_band_c: float = _GUARD_BAND_C,
    ) -> None:
        super().__init__()
        self.prediction_horizon_s = prediction_horizon_s
        self.guard_band_c = guard_band_c
        self.migration_decisions = 0

    # -- prediction ---------------------------------------------------------------

    def _predicted_core_temps(self) -> Optional[np.ndarray]:
        """Core temperatures ``horizon`` ahead under the current power map.

        Reads the *observed* temperatures (the sensor shim under fault
        injection, ground truth otherwise), so the predictor degrades the
        way a real platform's would: it extrapolates from what its
        sensors report, never from physically inaccessible state.
        """
        try:
            temps_now = self.observed_temperatures()
        except RuntimeError:
            return None
        idle = self.ctx.power_model.idle_power_w()
        power = np.full(self.ctx.n_cores, idle)
        for thread_id, core in self._placer.placements.items():
            try:
                power[core] = self.ctx.thread_power_w(thread_id)
            except KeyError:
                continue
        # lift core temps onto the full node vector: approximate cooling
        # nodes with their idle-steady values (the engine only exposes core
        # temperatures, as a real sensor array would)
        model = self.ctx.thermal_model
        ambient = self.ctx.config.thermal.ambient_c
        nodes = model.steady_state(power, ambient)
        nodes[: model.n_cores] = temps_now
        # one-shot what-if: the eigenbasis step avoids the dense path's
        # second O(N^3) steady-state solve per prediction
        future = self.ctx.dynamics.step_spectral(
            nodes, power, ambient, self.prediction_horizon_s
        )
        return model.core_temperatures(future)

    # -- migration ------------------------------------------------------------------

    def _maybe_migrate(self) -> None:
        predicted = self._predicted_core_temps()
        if predicted is None:
            return
        threshold = self.ctx.config.thermal.dtm_threshold_c - self.guard_band_c
        placements = self._placer.placements
        occupied = {core: t for t, core in placements.items()}
        free = self._placer.free_cores()
        if not free:
            return
        endangered = [
            core
            for core in occupied
            if predicted[core] > threshold
        ]
        endangered.sort(key=lambda c: -predicted[c])
        for core in endangered[:_MAX_MIGRATIONS_PER_INTERVAL]:
            if not free:
                break
            # coolest predicted free core; ties -> better (lower) AMD
            free.sort(key=lambda c: (predicted[c], self.ctx.rings.amd[c]))
            target = free[0]
            if predicted[target] >= predicted[core]:
                continue  # nowhere cooler to go
            self._placer.move(occupied[core], target)
            free.remove(target)
            free.append(core)
            self.migration_decisions += 1
        self._recompute_budget()

    def decide(self, now_s: float) -> SchedulerDecision:
        self._maybe_migrate()
        return super().decide(now_s)

    def metrics(self) -> Mapping[str, float]:
        """Migration-trigger counters for the observability snapshot."""
        data = dict(super().metrics())
        data["migration_decisions"] = float(self.migration_decisions)
        return data

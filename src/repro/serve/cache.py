"""Cross-tenant caching of the expensive thermal artifacts.

The serve layer hosts many tenants, each described by a
:class:`~repro.config.SystemConfig`.  Almost everything expensive about
answering a tenant's queries is a pure function of a small slice of that
configuration:

- the calibrated RC model and its eigendecomposition
  (:class:`~repro.thermal.matex.ThermalDynamics`, the ``O(N^3)``
  design-time phase) depend only on the floorplan (mesh geometry, core
  area) and the calibration anchors (idle power, ambient, DTM threshold);
- the Algorithm-1 run-time auxiliaries and the peak-temperature memo
  (:class:`~repro.core.peak_temperature.PeakTemperatureCalculator`)
  additionally depend on ambient and — through the memo keys — the DTM
  threshold/hysteresis.

:class:`ServeCache` therefore shares these objects across every tenant
whose fingerprint matches, so the first tenant pays the eigendecomposition
and later tenants (and repeated candidate queries from *any* tenant) hit
warm caches.  Two fingerprints with different granularity:

- :func:`model_fingerprint` — keys the eigendecomposition;
- :func:`config_fingerprint` — additionally folds in hysteresis and the
  scheduling knobs; it identifies a tenant's full thermal configuration
  and doubles as the ``config_key`` baked into the shared Algorithm-1
  memo (see :class:`~repro.core.peak_temperature.PeakTemperatureCalculator`),
  which is what makes sharing one memo store across tenants safe.

All stores are bounded LRUs; hit/miss/eviction counters surface through
:meth:`ServeCache.stats` and are published at ``serve.cache.*`` on the
``/metrics`` endpoint (``docs/serve.md``).
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from typing import Dict, Optional, Tuple

from .._lru import LruCache
from ..config import SystemConfig
from ..core.peak_temperature import PeakTemperatureCalculator
from ..obs.spans import SpanTracer
from ..sim.context import SimContext
from ..thermal.calibrate import calibrated_model
from ..thermal.matex import ThermalDynamics

__all__ = [
    "ServeCache",
    "config_fingerprint",
    "model_fingerprint",
]

#: Bounds of the shared stores.  Dynamics entries are heavyweight
#: (eigenvector matrices, ``O(N^2)`` floats); calculators are cheap
#: wrappers; one shared peak memo exists per dynamics entry.
_DYNAMICS_CACHE_SIZE = 8
_CALCULATOR_CACHE_SIZE = 64
_SHARED_PEAK_MEMO_SIZE = 8192


def _digest(parts: Tuple) -> str:
    """Short stable hex fingerprint of a tuple of primitives."""
    return hashlib.blake2b(repr(parts).encode(), digest_size=8).hexdigest()


def _model_key(config: SystemConfig) -> Tuple:
    """Everything the calibrated RC model / eigendecomposition depends on."""
    thermal = config.thermal
    return (
        config.mesh_width,
        config.mesh_height,
        float(config.core_area_m2),
        float(thermal.idle_power_w),
        float(thermal.ambient_c),
        float(thermal.dtm_threshold_c),
    )


def _calculator_key(config: SystemConfig) -> Tuple:
    """Everything a cached Algorithm-1 answer depends on."""
    thermal = config.thermal
    return _model_key(config) + (
        float(thermal.dtm_hysteresis_c),
    )


def model_fingerprint(config: SystemConfig) -> str:
    """Fingerprint of the floorplan + calibration anchors.

    Tenants with equal model fingerprints share one eigendecomposition.
    """
    return _digest(_model_key(config))


def config_fingerprint(config: SystemConfig) -> str:
    """Fingerprint of a tenant's full thermal/scheduling configuration.

    Extends :func:`model_fingerprint` with the DTM hysteresis, headroom
    and the rotation/simulation intervals; exposed per tenant in the
    service API so operators can see which tenants share caches.
    """
    thermal = config.thermal
    return _digest(
        _calculator_key(config)
        + (
            float(thermal.headroom_delta_c),
            float(config.rotation_interval_s),
            float(config.sim_interval_s),
        )
    )


class ServeCache:
    """Bounded cross-tenant stores for dynamics, calculators and memos."""

    def __init__(
        self,
        dynamics_capacity: int = _DYNAMICS_CACHE_SIZE,
        calculator_capacity: int = _CALCULATOR_CACHE_SIZE,
        peak_memo_capacity: int = _SHARED_PEAK_MEMO_SIZE,
    ):
        #: model key -> (ThermalDynamics, shared peak-memo LruCache); the
        #: memo lives and dies with its dynamics entry
        self._dynamics = LruCache(dynamics_capacity)
        #: calculator key -> PeakTemperatureCalculator
        self._calculators = LruCache(calculator_capacity)
        self._peak_memo_capacity = peak_memo_capacity
        #: span tracer; the server attaches its own on construction so the
        #: expensive eigendecomposition shows up as a ``cache.*`` span
        #: (a disabled default keeps standalone caches overhead-free)
        self.tracer: Optional[SpanTracer] = None
        #: every shared memo store ever created, in creation order; stats
        #: aggregate over this list so counters stay monotonic after an
        #: eviction retires a floorplan (retired stores are cleared —
        #: ``LruCache.clear`` preserves counters — so they hold no data)
        self._memo_stores: list = []

    def _span(self, name: str, **attrs):
        """A tracer span, or a no-op context when no tracer is attached."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    # -- shared artifacts ----------------------------------------------------

    def dynamics_for(self, config: SystemConfig) -> ThermalDynamics:
        """The (shared) eigendecomposition for ``config``'s floorplan."""
        return self._dynamics_entry(config)[0]

    def _dynamics_entry(
        self, config: SystemConfig
    ) -> Tuple[ThermalDynamics, LruCache]:
        key = _model_key(config)
        entry = self._dynamics.get(key)
        if entry is None:
            memo = LruCache(self._peak_memo_capacity)
            self._memo_stores.append(memo)
            with self._span(
                "cache.eigendecomposition", n_cores=config.n_cores
            ):
                entry = (ThermalDynamics(calibrated_model(config)), memo)
            self._dynamics[key] = entry
            self._clear_retired_memos()
        return entry

    def _clear_retired_memos(self) -> None:
        """Drop the data (not the counters) of memos whose dynamics entry
        was evicted, so retired floorplans stop holding cached peaks."""
        live = {
            id(self._dynamics.peek(key)[1]) for key in self._dynamics
        }
        for memo in self._memo_stores:
            if id(memo) not in live:
                memo.clear()

    def calculator_for(self, config: SystemConfig) -> PeakTemperatureCalculator:
        """The (shared) Algorithm-1 calculator for ``config``.

        Tenants with equal calculator keys receive the *same instance*
        (shared alpha/beta tensors and memo).  Tenants that share only the
        model key receive distinct calculators wired to one shared memo
        store, kept collision-free by the per-configuration ``config_key``
        in every memo fingerprint.
        """
        key = _calculator_key(config)
        calculator = self._calculators.get(key)
        if calculator is None:
            with self._span("cache.calculator_build"):
                dynamics, shared_memo = self._dynamics_entry(config)
                calculator = PeakTemperatureCalculator(
                    dynamics,
                    config.thermal.ambient_c,
                    config_key=_digest(key),
                    peak_cache=shared_memo,
                )
            self._calculators[key] = calculator
        return calculator

    def context_for(self, config: SystemConfig) -> SimContext:
        """A fresh :class:`SimContext` reusing the shared substrates.

        Everything stateless is shared (dynamics, calculator — including
        its cross-tenant memo); the context itself (and the mutable
        simulation state the engine builds on top) is private to the
        caller.
        """
        return SimContext(
            config,
            dynamics=self.dynamics_for(config),
            calculator=self.calculator_for(config),
        )

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Flat counters for the ``serve.cache.*`` metrics family.

        ``peak_memo`` aggregates every shared memo store ever created
        (live and retired), so hit counters never move backwards when an
        eviction retires a floorplan.
        """
        flat: Dict[str, float] = {}
        flat.update(self._dynamics.stats("dynamics"))
        flat.update(self._calculators.stats("calculators"))
        memo_totals = {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        for memo in self._memo_stores:
            memo_totals["hits"] += memo.hits
            memo_totals["misses"] += memo.misses
            memo_totals["evictions"] += memo.evictions
            memo_totals["size"] += len(memo)
        for name, value in memo_totals.items():
            flat[f"peak_memo.{name}"] = value
        return {key: float(value) for key, value in flat.items()}

"""``python -m repro.serve`` — run the thermal-scheduling service.

Binds the asyncio server and serves until interrupted.  Follows the
shared CLI contract of :mod:`repro._cli` (exit 0 on a clean shutdown,
2 on usage errors).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from .._cli import EXIT_OK, run_cli
from .http import ThermalServer
from .service import ServeConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Thermal-scheduling-as-a-service (see docs/serve.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8787, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-tenants", type=int, default=64, help="tenant capacity"
    )
    parser.add_argument(
        "--simulate-max-time",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="hard ceiling on one /v1/simulate horizon [simulated s]",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="micro-batch coalescing window (0 = same event-loop tick)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable request-span tracing (GET /debug/traces)",
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=4096,
        help="span ring-buffer capacity (with --trace)",
    )
    parser.add_argument(
        "--trace-path",
        metavar="JSONL",
        help="stream finished spans to this JSONL file (with --trace)",
    )
    parser.add_argument(
        "--slo-latency",
        type=float,
        metavar="SECONDS",
        help="default per-tenant latency SLO target (unset = no SLO)",
    )
    parser.add_argument(
        "--slo-budget",
        type=float,
        default=0.01,
        metavar="FRACTION",
        help="allowed fraction of requests over the SLO target",
    )
    return parser


async def _serve(server: ThermalServer) -> None:
    await server.start()
    host = server.config.host
    print(f"repro.serve listening on http://{host}:{server.port}")
    await server.serve_forever()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns an ``EXIT_*`` code."""
    args = _build_parser().parse_args(argv)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_tenants=args.max_tenants,
        simulate_max_time_s=args.simulate_max_time,
        batch_window_s=args.batch_window,
        trace_spans=args.trace,
        trace_capacity=args.trace_capacity,
        trace_path=args.trace_path,
        slo_latency_s=args.slo_latency,
        slo_error_budget=args.slo_budget,
    )
    # Constructed before the loop starts: ``__init__`` may open a trace
    # sink (``--trace-path``), which must not block the running loop.
    server = ThermalServer(config)
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        pass
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(run_cli(main))

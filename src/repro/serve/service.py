"""Tenant registry and domain logic behind the service endpoints.

:class:`ThermalService` is the transport-free core of ``repro.serve``: it
owns the tenant table, validates request payloads, builds Algorithm-1
candidate lists, selects rotation intervals over the tau-ladder, runs
bounded-horizon simulations, and walks each tenant's degradation ladder.
The HTTP layer (:mod:`repro.serve.http`) is a thin translation of these
methods onto routes; everything here is synchronous, deterministic and
directly unit-testable.

**Degradation ladder** (mirrors :data:`repro.sched.base.DEGRADATION_MODES`
— see ``docs/faults.md``): a tenant starts ``normal``.  A failed
simulation moves it to ``degraded`` — further ``/v1/simulate`` calls are
refused with a retry hint until a cooldown elapses, while the cheap
analytic endpoints keep answering.  ``park_after_failures`` consecutive
failures move it to ``safe-park`` — *every* tenant endpoint is refused
(HTTP 503 + ``Retry-After`` at the transport) for a 10x longer cooldown.
A successful simulation resets the tenant to ``normal``.  Time is
injected by the caller (the HTTP layer passes the event loop's monotonic
clock) so the service itself never reads a clock.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import SystemConfig
from ..core.hotpotato import DEFAULT_TAU_LADDER_S
from ..obs.detect import SloLatencyViolationDetector
from ..obs.observer import Observer
from ..obs.profiling import PhaseProfiler
from ..obs.slo import SloTarget
from ..sched import (
    FixedRotationScheduler,
    HotPotatoScheduler,
    PCGovScheduler,
    PCMigScheduler,
    PeakFrequencyScheduler,
)
from ..sim import IntervalSimulator
from ..workload.generator import (
    homogeneous_fill,
    materialize,
    poisson_arrivals,
    random_mixed_workload,
)
from .cache import ServeCache, config_fingerprint, model_fingerprint

__all__ = ["ServeConfig", "TenantState", "ThermalService", "metric_label"]

#: Tenant degradation modes, mildest first (the serve-side mirror of
#: :data:`repro.sched.base.DEGRADATION_MODES`).
TENANT_MODES = ("normal", "degraded", "safe-park")

#: Schedulers a tenant may request for ``/v1/simulate``.
SCHEDULERS = {
    "hotpotato": HotPotatoScheduler,
    "pcmig": PCMigScheduler,
    "pcgov": PCGovScheduler,
    "fixed_rotation": FixedRotationScheduler,
    "peak_frequency": PeakFrequencyScheduler,
}

#: Tenant-config override keys accepted by ``POST /v1/tenants`` and the
#: SystemConfig/ThermalConfig field each maps to.
_TOP_LEVEL_OVERRIDES = (
    "mesh_width",
    "mesh_height",
    "rotation_interval_s",
    "sim_interval_s",
)
_THERMAL_OVERRIDES = (
    "ambient_c",
    "dtm_threshold_c",
    "dtm_hysteresis_c",
    "headroom_delta_c",
    "idle_power_w",
)


@dataclass(frozen=True)
class ServeConfig:
    """Operating limits of one server instance."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests, loadgen).
    port: int = 0
    max_tenants: int = 64
    #: hard ceiling on one ``/v1/simulate`` horizon [simulated s].
    simulate_max_time_s: float = 0.25
    #: ``Retry-After`` hint for a ``degraded`` tenant [s].
    retry_after_s: float = 1.0
    #: consecutive simulation failures before ``safe-park``.
    park_after_failures: int = 3
    #: micro-batch coalescing window [s]; 0 coalesces within one event-loop
    #: tick (every request that arrived in the same burst).
    batch_window_s: float = 0.0
    #: largest accepted request body [bytes].
    max_body_bytes: int = 1 << 20
    #: request-span tracing (off by default: zero overhead, byte-identical
    #: responses — see ``docs/observability.md``).
    trace_spans: bool = False
    #: ring-buffer capacity of the in-memory span store.
    trace_capacity: int = 4096
    #: optional span JSONL sink path (streamed as spans finish).
    trace_path: Optional[str] = None
    #: default per-tenant latency SLO target [s]; ``None`` disables SLO
    #: tracking for tenants that do not request one explicitly.
    slo_latency_s: Optional[float] = None
    #: default allowed fraction of requests over the SLO target.
    slo_error_budget: float = 0.01

    @property
    def park_retry_after_s(self) -> float:
        """Cooldown of a safe-parked tenant (10x the degraded hint)."""
        return 10.0 * self.retry_after_s


@dataclass
class TenantState:
    """One tenant: its configuration, shared-cache handles and health."""

    name: str
    config: SystemConfig
    #: full-configuration fingerprint (cache identity, exposed in the API)
    fingerprint: str
    #: floorplan/calibration fingerprint (eigendecomposition identity)
    model_fp: str
    calculator: Any
    #: consecutive simulation failures
    failures: int = 0
    mode: str = "normal"
    #: monotonic instant until which the current mode refuses requests
    blocked_until_s: float = 0.0
    requests: int = 0
    annotations: Dict[str, float] = field(default_factory=dict)
    #: latency-SLO detector (None when no target is configured)
    slo: Optional[SloLatencyViolationDetector] = None


class ThermalService:
    """Transport-free service core: tenants, queries, degradation."""

    def __init__(
        self, serve_config: Optional[ServeConfig] = None,
        cache: Optional[ServeCache] = None,
    ):
        self.config = serve_config if serve_config is not None else ServeConfig()
        self.cache = cache if cache is not None else ServeCache()
        self._tenants: Dict[str, TenantState] = {}
        #: monotonic transition counters for the metrics registry
        self.degradation_transitions: Dict[str, int] = {
            mode: 0 for mode in TENANT_MODES
        }
        self.simulate_failures = 0

    # -- tenant registry -----------------------------------------------------

    @staticmethod
    def build_config(overrides: Optional[Dict[str, Any]]) -> SystemConfig:
        """A tenant :class:`SystemConfig` from a JSON override object."""
        config = SystemConfig()
        if not overrides:
            return config
        if not isinstance(overrides, dict):
            raise ValueError("config must be a JSON object")
        unknown = (
            set(overrides) - set(_TOP_LEVEL_OVERRIDES) - set(_THERMAL_OVERRIDES)
        )
        if unknown:
            raise ValueError(
                f"unknown config keys: {sorted(unknown)}; allowed: "
                f"{sorted(_TOP_LEVEL_OVERRIDES + _THERMAL_OVERRIDES)}"
            )
        top = {}
        for key in _TOP_LEVEL_OVERRIDES:
            if key in overrides:
                value = overrides[key]
                if key.startswith("mesh_"):
                    if not isinstance(value, int) or value < 1:
                        raise ValueError(f"{key} must be a positive integer")
                    top[key] = value
                else:
                    top[key] = _positive_float(key, value)
        thermal = {}
        for key in _THERMAL_OVERRIDES:
            if key in overrides:
                thermal[key] = _finite_float(key, overrides[key])
        if thermal:
            top["thermal"] = dataclasses.replace(config.thermal, **thermal)
        return config.replace(**top)

    def build_slo(
        self, slo: Optional[Dict[str, Any]], tenant_name: str
    ) -> Optional[SloLatencyViolationDetector]:
        """A latency-SLO detector from a ``slo`` request object.

        ``{"latency_s": ..., "error_budget": ...}`` per tenant; when the
        request carries no ``slo`` object, the server-wide default from
        :class:`ServeConfig` applies (``None`` = no SLO tracking).
        """
        if slo is None:
            if self.config.slo_latency_s is None:
                return None
            target = SloTarget(
                self.config.slo_latency_s, self.config.slo_error_budget
            )
            return SloLatencyViolationDetector(target, tenant=tenant_name)
        if not isinstance(slo, dict):
            raise ValueError("slo must be a JSON object")
        unknown = set(slo) - {"latency_s", "error_budget"}
        if unknown:
            raise ValueError(
                f"unknown slo keys: {sorted(unknown)}; "
                "allowed: ['error_budget', 'latency_s']"
            )
        if "latency_s" not in slo:
            raise ValueError("slo needs 'latency_s'")
        target = SloTarget(
            _positive_float("slo.latency_s", slo["latency_s"]),
            _positive_float(
                "slo.error_budget",
                slo.get("error_budget", self.config.slo_error_budget),
            ),
        )
        return SloLatencyViolationDetector(target, tenant=tenant_name)

    def create_tenant(
        self,
        name: str,
        overrides: Optional[Dict[str, Any]] = None,
        slo: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Register a tenant; returns its public info object."""
        if not name or not isinstance(name, str):
            raise ValueError("tenant name must be a non-empty string")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already exists")
        if len(self._tenants) >= self.config.max_tenants:
            raise ValueError(
                f"tenant capacity reached ({self.config.max_tenants})"
            )
        config = self.build_config(overrides)
        tenant = TenantState(
            name=name,
            config=config,
            fingerprint=config_fingerprint(config),
            model_fp=model_fingerprint(config),
            calculator=self.cache.calculator_for(config),
            slo=self.build_slo(slo, name),
        )
        self._tenants[name] = tenant
        return self.tenant_info(tenant)

    def delete_tenant(self, name: str) -> None:
        """Remove a tenant (shared cache entries stay warm)."""
        if name not in self._tenants:
            raise KeyError(f"unknown tenant {name!r}")
        del self._tenants[name]

    def tenant(self, name: str) -> TenantState:
        """Look up a tenant; raises :class:`KeyError` when unknown."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise KeyError(f"unknown tenant {name!r}")
        return tenant

    def tenants(self) -> List[TenantState]:
        """All tenants in creation order."""
        return list(self._tenants.values())

    def tenant_info(self, tenant: TenantState) -> Dict[str, Any]:
        """The public JSON view of one tenant."""
        thermal = tenant.config.thermal
        info: Dict[str, Any] = {
            "tenant": tenant.name,
            "fingerprint": tenant.fingerprint,
            "model_fingerprint": tenant.model_fp,
            "mesh": [tenant.config.mesh_width, tenant.config.mesh_height],
            "n_cores": tenant.config.n_cores,
            "ambient_c": thermal.ambient_c,
            "dtm_threshold_c": thermal.dtm_threshold_c,
            "dtm_hysteresis_c": thermal.dtm_hysteresis_c,
            "headroom_delta_c": thermal.headroom_delta_c,
            "mode": tenant.mode,
            "failures": tenant.failures,
            "requests": tenant.requests,
        }
        if tenant.slo is not None:
            info["slo"] = {
                key.removeprefix("slo."): value
                for key, value in tenant.slo.tracker.snapshot().items()
            }
            info["slo"]["violations"] = len(tenant.slo.violations)
        return info

    # -- degradation ladder --------------------------------------------------

    def blocked_for(
        self, tenant: TenantState, endpoint: str, now_s: float
    ) -> Optional[float]:
        """Seconds the caller should wait before retrying, or ``None``.

        ``degraded`` refuses only ``simulate``; ``safe-park`` refuses every
        tenant endpoint.  Once the cooldown elapses requests are admitted
        again (half-open: the mode label resets only on success).
        """
        if tenant.mode == "normal" or now_s >= tenant.blocked_until_s:
            return None
        if tenant.mode == "safe-park" or endpoint == "simulate":
            return max(0.0, tenant.blocked_until_s - now_s)
        return None

    def record_simulate_failure(
        self, tenant: TenantState, now_s: float
    ) -> str:
        """Advance the tenant's ladder after a failed simulation."""
        tenant.failures += 1
        self.simulate_failures += 1
        if tenant.failures >= self.config.park_after_failures:
            mode, cooldown = "safe-park", self.config.park_retry_after_s
        else:
            mode, cooldown = "degraded", self.config.retry_after_s
        if mode != tenant.mode:
            self.degradation_transitions[mode] += 1
        tenant.mode = mode
        tenant.blocked_until_s = now_s + cooldown
        return mode

    def record_simulate_success(self, tenant: TenantState) -> None:
        """A successful simulation fully resets the ladder."""
        if tenant.mode != "normal":
            self.degradation_transitions["normal"] += 1
        tenant.failures = 0
        tenant.mode = "normal"
        tenant.blocked_until_s = 0.0

    # -- /v1/peak ------------------------------------------------------------

    def parse_candidates(
        self, tenant: TenantState, payload: Dict[str, Any]
    ) -> Tuple[List[np.ndarray], List[Optional[float]]]:
        """Candidate lists for ``peak_batch`` from a ``/v1/peak`` payload.

        Accepts either one candidate (``power`` or ``power_seq`` plus an
        optional ``tau_s``) or a ``candidates`` array of such objects.
        """
        if "candidates" in payload:
            raw = payload["candidates"]
            if not isinstance(raw, list) or not raw:
                raise ValueError("candidates must be a non-empty array")
        else:
            raw = [payload]
        seqs: List[np.ndarray] = []
        taus: List[Optional[float]] = []
        for item in raw:
            seq, tau_s = self._parse_candidate(tenant, item)
            seqs.append(seq)
            taus.append(tau_s)
        return seqs, taus

    def _parse_candidate(
        self, tenant: TenantState, item: Dict[str, Any]
    ) -> Tuple[np.ndarray, Optional[float]]:
        if not isinstance(item, dict):
            raise ValueError("candidate must be a JSON object")
        n_cores = tenant.config.n_cores
        if "power_seq" in item:
            seq = np.asarray(item["power_seq"], dtype=float)
            if seq.ndim != 2:
                raise ValueError("power_seq must be a 2-D array")
        elif "power" in item:
            seq = np.asarray(item["power"], dtype=float).reshape(1, -1)
        else:
            raise ValueError("candidate needs 'power' or 'power_seq'")
        if seq.shape[1] != n_cores:
            raise ValueError(
                f"power vector length {seq.shape[1]} != n_cores {n_cores}"
            )
        if not np.all(np.isfinite(seq)) or np.any(seq < 0):
            raise ValueError("power must be finite and non-negative")
        tau_s = item.get("tau_s")
        if tau_s is not None:
            tau_s = _positive_float("tau_s", tau_s)
        return seq, tau_s

    def peak_payload(
        self,
        tenant: TenantState,
        peaks: Sequence[float],
        taus: Sequence[Optional[float]],
        single: bool,
    ) -> Dict[str, Any]:
        """The ``/v1/peak`` response body for evaluated candidates."""
        thermal = tenant.config.thermal
        target_c = thermal.dtm_threshold_c - thermal.headroom_delta_c
        results = [
            {
                "t_peak_c": float(peak),
                "tau_s": tau,
                "sustainable": bool(peak < target_c),
                "headroom_c": float(thermal.dtm_threshold_c - peak),
            }
            for peak, tau in zip(peaks, taus)
        ]
        if single:
            return results[0]
        return {"results": results}

    # -- /v1/tau -------------------------------------------------------------

    def ladder_candidates(
        self, tenant: TenantState, payload: Dict[str, Any]
    ) -> Tuple[List[np.ndarray], List[Optional[float]]]:
        """Tau-ladder candidates for a ``/v1/tau`` payload.

        The ladder is evaluated exactly as HotPotato's interval
        re-selection does (:meth:`repro.core.HotPotato._select_tau`):
        slowest interval first, with rotation-off (``tau = None``,
        evaluated on the first epoch only) as the cheapest candidate.
        """
        seq, _ = self._parse_candidate(tenant, payload)
        ladder = payload.get("ladder_s")
        if ladder is None:
            ladder_values = list(DEFAULT_TAU_LADDER_S)
        else:
            if not isinstance(ladder, list) or not ladder:
                raise ValueError("ladder_s must be a non-empty array")
            ladder_values = [_positive_float("ladder_s", t) for t in ladder]
        ladder_values = sorted(set(ladder_values), reverse=True)
        seqs: List[np.ndarray] = [seq[:1]]
        taus: List[Optional[float]] = [None]
        rotates = seq.shape[0] > 1
        for tau_s in ladder_values:
            seqs.append(seq if rotates else seq[:1])
            taus.append(tau_s if rotates else None)
        return seqs, taus

    def tau_payload(
        self,
        tenant: TenantState,
        peaks: Sequence[float],
        taus: Sequence[Optional[float]],
    ) -> Dict[str, Any]:
        """Select the slowest sustainable interval (Algorithm 2 policy).

        Falls back — exactly like the scheduler — to the slowest interval
        within 0.5 degC of the best achievable peak when nothing is
        sustainable (hardware DTM remains the backstop).
        """
        thermal = tenant.config.thermal
        peaks = [float(p) for p in peaks]
        target_c = max(
            thermal.dtm_threshold_c - thermal.headroom_delta_c,
            min(peaks) + 0.5,
        )
        chosen = 0
        for index, peak_c in enumerate(peaks):
            if peak_c <= target_c:
                chosen = index
                break
        sustainable = bool(
            peaks[chosen]
            < thermal.dtm_threshold_c - thermal.headroom_delta_c
        )
        return {
            "tau_s": taus[chosen],
            "t_peak_c": peaks[chosen],
            "sustainable": sustainable,
            "ladder": [
                {"tau_s": tau, "t_peak_c": peak}
                for tau, peak in zip(taus, peaks)
            ],
        }

    # -- /v1/simulate --------------------------------------------------------

    def build_simulation(
        self,
        tenant: TenantState,
        payload: Dict[str, Any],
        profiler: Optional[PhaseProfiler] = None,
    ) -> Tuple[IntervalSimulator, float, int]:
        """Phase 1 of ``/v1/simulate``: validate and construct.

        Returns the ready (unstarted) simulator, the clamped horizon and
        the submitted task count.  Split from :meth:`simulate` so
        :meth:`simulate_many` can build a whole burst first and fuse the
        runs' thermal stepping.
        """
        spec = payload.get("workload")
        if not isinstance(spec, dict):
            raise ValueError("simulate needs a 'workload' object")
        scheduler_name = payload.get("scheduler", "hotpotato")
        factory = SCHEDULERS.get(scheduler_name)
        if factory is None:
            raise ValueError(
                f"unknown scheduler {scheduler_name!r}; "
                f"one of {sorted(SCHEDULERS)}"
            )
        max_time_s = _positive_float(
            "max_time_s", payload.get("max_time_s", 0.05)
        )
        horizon_s = min(max_time_s, self.config.simulate_max_time_s)
        tasks = materialize(self._workload_specs(tenant, spec))
        ctx = self.cache.context_for(tenant.config)
        observer = (
            Observer(profiler=profiler) if profiler is not None else None
        )
        simulator = IntervalSimulator(
            tenant.config, factory(), tasks, ctx=ctx, observer=observer
        )
        return simulator, horizon_s, len(tasks)

    def summarize_simulation(
        self,
        tenant: TenantState,
        result,
        horizon_s: float,
        tasks_submitted: int,
    ) -> Dict[str, Any]:
        """Phase 2 of ``/v1/simulate``: the response body for one run."""
        summary: Dict[str, Any] = {
            "scheduler": result.scheduler_name,
            "sim_time_s": result.sim_time_s,
            "horizon_s": horizon_s,
            "tasks_submitted": tasks_submitted,
            "tasks_completed": len(result.tasks),
            "dtm_triggers": result.dtm_triggers,
            "dtm_core_time_s": result.dtm_core_time_s,
            "migrations": result.migration_count,
            "migration_penalty_s": result.migration_penalty_s,
            "energy_j": result.energy_j,
        }
        if result.tasks:
            summary["makespan_s"] = result.makespan_s
            summary["mean_response_time_s"] = result.mean_response_time_s
        if result.trace is not None and len(result.trace):
            summary["peak_temperature_c"] = result.peak_temperature_c
            summary["time_above_dtm_s"] = result.time_above_c(
                tenant.config.thermal.dtm_threshold_c
            )
        return summary

    def simulate(
        self,
        tenant: TenantState,
        payload: Dict[str, Any],
        profiler: Optional[PhaseProfiler] = None,
    ) -> Dict[str, Any]:
        """Run a bounded-horizon simulation and summarize the trace.

        The horizon is clamped to ``ServeConfig.simulate_max_time_s``:
        the server is single-threaded by design (``docs/serve.md``), so
        one tenant must not be able to monopolize the loop.  A
        ``profiler`` threads engine phase timings out to the caller (the
        HTTP layer turns them into child spans of the request).
        """
        simulator, horizon_s, n_tasks = self.build_simulation(
            tenant, payload, profiler
        )
        result = simulator.run(max_time_s=horizon_s)
        return self.summarize_simulation(tenant, result, horizon_s, n_tasks)

    def simulate_many(
        self,
        items: Sequence[Tuple[TenantState, Dict[str, Any]]],
        profilers: Optional[Sequence[Optional[PhaseProfiler]]] = None,
        metrics=None,
    ) -> List[Tuple[str, Any]]:
        """Run a burst of ``/v1/simulate`` requests with fused stepping.

        Builds every request's simulator first, groups the runs by shared
        eigenbasis (tenants whose configs share a
        :class:`~repro.thermal.matex.ThermalDynamics` via the
        :class:`~repro.serve.cache.ServeCache`), and lock-steps each group
        through one :class:`~repro.sim.batch.BatchedSimulatorSet` — the
        responses are byte-identical to sequential :meth:`simulate` calls.
        Returns one ``("ok", summary)`` or ``("error", exception)`` pair
        per request, in order; one request's failure never poisons the
        others (a failing fused group is re-run request-by-request to
        attribute the failure).  ``metrics`` receives the
        ``parallel.batch.*`` gauges.
        """
        from ..sim.batch import BatchedSimulatorSet

        if len(items) == 1:
            # single request: go through simulate() itself, so test
            # doubles and subclass overrides of it keep working (and the
            # plain 2-arg call when untraced keeps their signatures small)
            tenant, payload = items[0]
            profiler = profilers[0] if profilers is not None else None
            try:
                summary = (
                    self.simulate(tenant, payload, profiler)
                    if profiler is not None
                    else self.simulate(tenant, payload)
                )
            except Exception as exc:
                return [("error", exc)]
            return [("ok", summary)]

        outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(items)
        built: List[Tuple[int, IntervalSimulator, float, int]] = []
        for index, (tenant, payload) in enumerate(items):
            profiler = profilers[index] if profilers is not None else None
            try:
                simulator, horizon_s, n_tasks = self.build_simulation(
                    tenant, payload, profiler
                )
            except Exception as exc:
                outcomes[index] = ("error", exc)
            else:
                built.append((index, simulator, horizon_s, n_tasks))

        groups: Dict[int, List[Tuple[int, IntervalSimulator, float, int]]] = {}
        for entry in built:
            groups.setdefault(id(entry[1].ctx.dynamics), []).append(entry)
        for members in groups.values():
            if len(members) == 1:
                index, simulator, horizon_s, n_tasks = members[0]
                tenant = items[index][0]
                try:
                    result = simulator.run(max_time_s=horizon_s)
                    outcomes[index] = (
                        "ok",
                        self.summarize_simulation(
                            tenant, result, horizon_s, n_tasks
                        ),
                    )
                except Exception as exc:
                    outcomes[index] = ("error", exc)
                continue
            try:
                batch = BatchedSimulatorSet(
                    [sim for _, sim, _, _ in members], metrics=metrics
                )
                results = batch.run_all([h for _, _, h, _ in members])
            except Exception:
                # attribute the failure: re-run each request solo from a
                # fresh simulator (the fused ones are partially stepped)
                for index, _, _, _ in members:
                    tenant, payload = items[index]
                    profiler = (
                        profilers[index] if profilers is not None else None
                    )
                    try:
                        outcomes[index] = (
                            "ok", self.simulate(tenant, payload, profiler)
                        )
                    except Exception as exc:
                        outcomes[index] = ("error", exc)
                continue
            for (index, _, horizon_s, n_tasks), result in zip(
                members, results
            ):
                outcomes[index] = (
                    "ok",
                    self.summarize_simulation(
                        items[index][0], result, horizon_s, n_tasks
                    ),
                )
        return outcomes

    def _workload_specs(self, tenant: TenantState, spec: Dict[str, Any]):
        kind = spec.get("kind", "homogeneous")
        seed = spec.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError("workload seed must be an integer")
        work_scale = _positive_float(
            "work_scale", spec.get("work_scale", 1.0)
        )
        if kind == "homogeneous":
            benchmark = spec.get("benchmark", "blackscholes")
            specs = homogeneous_fill(
                benchmark,
                tenant.config.n_cores,
                seed=seed,
                work_scale=work_scale,
            )
        elif kind == "mixed":
            n_tasks = spec.get("n_tasks", 4)
            if not isinstance(n_tasks, int) or n_tasks < 1:
                raise ValueError("n_tasks must be a positive integer")
            specs = random_mixed_workload(
                n_tasks=n_tasks, seed=seed, work_scale=work_scale
            )
        else:
            raise ValueError(
                f"unknown workload kind {kind!r}; 'homogeneous' or 'mixed'"
            )
        rate = spec.get("arrival_rate_per_s")
        if rate is not None:
            specs = poisson_arrivals(
                specs, _positive_float("arrival_rate_per_s", rate), seed=seed
            )
        return specs

    # -- observability -------------------------------------------------------

    def gauges(self) -> Dict[str, float]:
        """Service-level gauges for the ``/metrics`` exposition."""
        flat: Dict[str, float] = {
            "serve.tenants": float(len(self._tenants)),
            "serve.simulate.failures": float(self.simulate_failures),
        }
        for mode, count in self.degradation_transitions.items():
            key = mode.replace("-", "_")
            flat[f"serve.degradation.to_{key}"] = float(count)
        for name, value in self.cache.stats().items():
            flat[f"serve.cache.{name}"] = value
        for tenant in self._tenants.values():
            if tenant.slo is None:
                continue
            label = metric_label(tenant.name)
            flat[f"serve.tenant.{label}.slo.budget_used"] = (
                tenant.slo.tracker.budget_used
            )
            flat[f"serve.tenant.{label}.slo.violations"] = float(
                len(tenant.slo.violations)
            )
        return flat


def metric_label(name: str) -> str:
    """A tenant name as a legal metric-name segment.

    ``openmetrics_name`` would map illegal characters to ``_`` anyway;
    doing it here keeps ``/metrics`` names collision-checked and stable.
    """
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def _finite_float(key: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{key} must be a number")
    result = float(value)
    if not np.isfinite(result):
        raise ValueError(f"{key} must be finite")
    return result


def _positive_float(key: str, value: Any) -> float:
    result = _finite_float(key, value)
    if result <= 0:
        raise ValueError(f"{key} must be positive")
    return result



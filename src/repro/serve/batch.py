"""Micro-batching of concurrent tenants' Algorithm-1 evaluations.

Every ``/v1/peak`` and ``/v1/tau`` request reduces to "evaluate these
``(power sequence, tau)`` candidates".  Evaluating them one request at a
time re-walks the floorplan's alpha/beta tensors per candidate; the
engine fast path (:meth:`~repro.core.peak_temperature.PeakTemperatureCalculator.peak_batch`)
already amortizes those tensors across a whole candidate list — so the
serve layer should hand it the *union* of everything currently in flight.

:class:`MicroBatcher` does exactly that: requests enqueue their
candidates and a flush callback — scheduled on the event loop, by
default for the very next tick (``loop.call_soon``), optionally delayed
by a coalescing window — drains the queue, groups candidates by
calculator instance (tenants sharing a calculator batch together, see
:class:`~repro.serve.cache.ServeCache`), and issues **one**
``peak_batch`` call per group.  Because ``peak_batch`` is memoized and
deterministic, batched answers are bit-for-bit identical to sequential
ones — a property the serve test suite asserts.

Counters (``serve.batch.*``) surface on ``/metrics``: ``flushes``,
``requests`` (candidates evaluated), and ``coalesced`` (candidates that
shared a flush with at least one other request).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent candidate evaluations into ``peak_batch`` calls."""

    def __init__(self, window_s: float = 0.0):
        #: coalescing window [s]; 0 flushes on the next event-loop tick.
        self.window_s = window_s
        #: queued (calculator, seq, tau, future) awaiting the next flush
        self._pending: List[Tuple[object, np.ndarray, Optional[float], asyncio.Future]] = []
        self._flush_scheduled = False
        # monotonic counters, published as serve.batch.* on /metrics
        self.flushes = 0
        self.requests = 0
        self.coalesced = 0

    async def evaluate_many(
        self,
        calculator,
        seqs: Sequence[np.ndarray],
        taus_s: Sequence[Optional[float]],
    ) -> List[float]:
        """Evaluate candidates through the next shared flush.

        Returns the peak temperature per candidate, in order.  Concurrent
        callers (any tenant, any calculator) that enqueue before the flush
        fires are evaluated in the same drain.
        """
        loop = asyncio.get_running_loop()
        futures: List[asyncio.Future] = []
        for seq, tau_s in zip(seqs, taus_s):
            future = loop.create_future()
            self._pending.append((calculator, seq, tau_s, future))
            futures.append(future)
        self._schedule_flush(loop)
        return list(await asyncio.gather(*futures))

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        if self.window_s > 0:
            loop.call_later(self.window_s, self._flush)
        else:
            loop.call_soon(self._flush)

    def _flush(self) -> None:
        """Drain the queue: one ``peak_batch`` call per calculator group."""
        self._flush_scheduled = False
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.flushes += 1
        self.requests += len(pending)
        if len(pending) > 1:
            self.coalesced += len(pending)
        groups: Dict[int, List[Tuple[object, np.ndarray, Optional[float], asyncio.Future]]] = {}
        for item in pending:
            groups.setdefault(id(item[0]), []).append(item)
        for items in groups.values():
            calculator = items[0][0]
            seqs = [item[1] for item in items]
            taus_s = [item[2] for item in items]
            try:
                peaks = calculator.peak_batch(seqs, taus_s)
            except Exception as exc:  # surface to every waiter in the group
                for _, _, _, future in items:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, _, _, future), peak_c in zip(items, peaks):
                if not future.done():
                    future.set_result(float(peak_c))

    def stats(self) -> Dict[str, float]:
        """Flat counters for the ``serve.batch.*`` metrics family."""
        return {
            "batch.flushes": float(self.flushes),
            "batch.requests": float(self.requests),
            "batch.coalesced": float(self.coalesced),
        }

"""Micro-batching of concurrent tenants' Algorithm-1 evaluations.

Every ``/v1/peak`` and ``/v1/tau`` request reduces to "evaluate these
``(power sequence, tau)`` candidates".  Evaluating them one request at a
time re-walks the floorplan's alpha/beta tensors per candidate; the
engine fast path (:meth:`~repro.core.peak_temperature.PeakTemperatureCalculator.peak_batch`)
already amortizes those tensors across a whole candidate list — so the
serve layer should hand it the *union* of everything currently in flight.

:class:`MicroBatcher` does exactly that: requests enqueue their
candidates and a flush callback — scheduled on the event loop, by
default for the very next tick (``loop.call_soon``), optionally delayed
by a coalescing window — drains the queue, groups candidates by
calculator instance (tenants sharing a calculator batch together, see
:class:`~repro.serve.cache.ServeCache`), and issues **one**
``peak_batch`` call per group.  Because ``peak_batch`` is memoized and
deterministic, batched answers are bit-for-bit identical to sequential
ones — a property the serve test suite asserts.

Counters (``serve.batch.*``) surface on ``/metrics``: ``flushes``,
``requests`` (candidates evaluated), and ``coalesced`` (candidates that
shared a flush with at least one other request).

When a :class:`~repro.obs.spans.SpanTracer` is attached, each drain runs
under a ``batch.flush`` span **linked** to the request spans whose
candidates it evaluates: ``loop.call_soon`` copies the *scheduling*
request's context, so the flush span cannot be a child of any single
request — it fans in N of them, and links are the honest representation
(the request side records the origin span id at enqueue time).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.spans import SpanTracer

__all__ = ["MicroBatcher", "SimulateBatcher"]

#: One queued candidate: calculator, power sequence, tau, waiter future,
#: and the span id of the request that enqueued it (None untraced).
_Pending = Tuple[
    object, np.ndarray, Optional[float], "asyncio.Future", Optional[int]
]


class MicroBatcher:
    """Coalesce concurrent candidate evaluations into ``peak_batch`` calls."""

    def __init__(
        self, window_s: float = 0.0, tracer: Optional[SpanTracer] = None
    ):
        #: coalescing window [s]; 0 flushes on the next event-loop tick.
        self.window_s = window_s
        #: span tracer (a disabled default keeps every span call a no-op)
        self.tracer = tracer if tracer is not None else SpanTracer()
        #: queued candidates awaiting the next flush
        self._pending: List[_Pending] = []
        self._flush_scheduled = False
        # monotonic counters, published as serve.batch.* on /metrics
        self.flushes = 0
        self.requests = 0
        self.coalesced = 0

    async def evaluate_many(
        self,
        calculator,
        seqs: Sequence[np.ndarray],
        taus_s: Sequence[Optional[float]],
    ) -> List[float]:
        """Evaluate candidates through the next shared flush.

        Returns the peak temperature per candidate, in order.  Concurrent
        callers (any tenant, any calculator) that enqueue before the flush
        fires are evaluated in the same drain.
        """
        loop = asyncio.get_running_loop()
        origin = self.tracer.current_span_id()
        futures: List[asyncio.Future] = []
        for seq, tau_s in zip(seqs, taus_s):
            future = loop.create_future()
            self._pending.append((calculator, seq, tau_s, future, origin))
            futures.append(future)
        self._schedule_flush(loop)
        with self.tracer.span("batch.wait", candidates=len(futures)):
            return list(await asyncio.gather(*futures))

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        if self.window_s > 0:
            loop.call_later(self.window_s, self._flush)
        else:
            loop.call_soon(self._flush)

    def _flush(self) -> None:
        """Drain the queue: one ``peak_batch`` call per calculator group."""
        self._flush_scheduled = False
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.flushes += 1
        self.requests += len(pending)
        if len(pending) > 1:
            self.coalesced += len(pending)
        origins = sorted(
            {item[4] for item in pending if item[4] is not None}
        )
        groups: Dict[int, List[_Pending]] = {}
        for item in pending:
            groups.setdefault(id(item[0]), []).append(item)
        with self.tracer.span(
            "batch.flush",
            root=True,
            links=tuple(origins),
            candidates=len(pending),
            groups=len(groups),
        ):
            for items in groups.values():
                calculator = items[0][0]
                seqs = [item[1] for item in items]
                taus_s = [item[2] for item in items]
                with self.tracer.span(
                    "batch.peak_batch", candidates=len(items)
                ):
                    try:
                        peaks = calculator.peak_batch(seqs, taus_s)
                    except Exception as exc:  # surface to every waiter
                        for _, _, _, future, _ in items:
                            if not future.done():
                                future.set_exception(exc)
                        continue
                for (_, _, _, future, _), peak_c in zip(items, peaks):
                    if not future.done():
                        future.set_result(float(peak_c))

    def stats(self) -> Dict[str, float]:
        """Flat counters for the ``serve.batch.*`` metrics family."""
        return {
            "batch.flushes": float(self.flushes),
            "batch.requests": float(self.requests),
            "batch.coalesced": float(self.coalesced),
        }


#: One queued simulate request: tenant, payload, profiler, waiter future,
#: and the span id of the request that enqueued it (None untraced).
_PendingSim = Tuple[object, dict, object, "asyncio.Future", Optional[int]]


class SimulateBatcher:
    """Coalesce concurrent ``/v1/simulate`` runs into fused batched engines.

    The same flush discipline as :class:`MicroBatcher`, one level up the
    stack: requests enqueue ``(tenant, payload)`` and a flush — scheduled
    for the next event-loop tick, optionally delayed by a coalescing
    window — hands the whole burst to
    :meth:`~repro.serve.service.ThermalService.simulate_many`, which
    builds every simulator, groups runs sharing a thermal eigenbasis, and
    lock-steps each group through one
    :class:`~repro.sim.batch.BatchedSimulatorSet`.  Responses are
    byte-identical to sequential :meth:`ThermalService.simulate` calls,
    and each request's success/failure resolves independently — the HTTP
    layer's per-tenant degradation ladder is unchanged.

    Counters join the ``serve.batch.*`` family on ``/metrics``:
    ``simulate_flushes``, ``simulate_requests``, and ``simulate_fused``
    (requests whose flush held at least one other request).
    """

    def __init__(
        self,
        service,
        window_s: float = 0.0,
        tracer: Optional[SpanTracer] = None,
        metrics=None,
    ):
        #: the :class:`~repro.serve.service.ThermalService` running sims
        self.service = service
        #: coalescing window [s]; 0 flushes on the next event-loop tick.
        self.window_s = window_s
        self.tracer = tracer if tracer is not None else SpanTracer()
        #: optional MetricsRegistry receiving ``parallel.batch.*`` gauges
        self.metrics = metrics
        self._pending: List[_PendingSim] = []
        self._flush_scheduled = False
        # monotonic counters, published as serve.batch.* on /metrics
        self.simulate_flushes = 0
        self.simulate_requests = 0
        self.simulate_fused = 0

    async def simulate(
        self, tenant, payload: dict, profiler=None
    ) -> dict:
        """Run one simulate request through the next shared flush."""
        loop = asyncio.get_running_loop()
        origin = self.tracer.current_span_id()
        future = loop.create_future()
        self._pending.append((tenant, payload, profiler, future, origin))
        self._schedule_flush(loop)
        with self.tracer.span("batch.simulate_wait"):
            return await future

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        if self.window_s > 0:
            loop.call_later(self.window_s, self._flush)
        else:
            loop.call_soon(self._flush)

    def _flush(self) -> None:
        """Drain the queue through ``ThermalService.simulate_many``."""
        self._flush_scheduled = False
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.simulate_flushes += 1
        self.simulate_requests += len(pending)
        if len(pending) > 1:
            self.simulate_fused += len(pending)
        origins = sorted(
            {item[4] for item in pending if item[4] is not None}
        )
        with self.tracer.span(
            "batch.simulate_flush",
            root=True,
            links=tuple(origins),
            requests=len(pending),
        ):
            outcomes = self.service.simulate_many(
                [(tenant, payload) for tenant, payload, _, _, _ in pending],
                profilers=[profiler for _, _, profiler, _, _ in pending],
                metrics=self.metrics,
            )
        for (_, _, _, future, _), (status, value) in zip(pending, outcomes):
            if future.done():
                continue
            if status == "ok":
                future.set_result(value)
            else:
                future.set_exception(value)

    def stats(self) -> Dict[str, float]:
        """Flat counters for the ``serve.batch.*`` metrics family."""
        return {
            "batch.simulate_flushes": float(self.simulate_flushes),
            "batch.simulate_requests": float(self.simulate_requests),
            "batch.simulate_fused": float(self.simulate_fused),
        }

"""Thermal scheduling as a service (``python -m repro.serve``).

A zero-dependency asyncio HTTP/1.1 server answering the online queries a
fleet operator asks of the paper's machinery — "is this placement
thermally safe?" (``POST /v1/peak``, Algorithm 1), "what rotation period
should I use?" (``POST /v1/tau``, the HotPotato tau-ladder), and "what
would actually happen?" (``POST /v1/simulate``, a bounded-horizon engine
run) — for many independent tenants, with live counters on
``GET /metrics``.

The layers, bottom-up (the request lifecycle is traced end-to-end in
``docs/architecture.md``; the endpoint reference is ``docs/serve.md``):

- :class:`ServeCache` — cross-tenant sharing of eigendecompositions,
  Algorithm-1 calculators and the peak-temperature memo;
- :class:`MicroBatcher` — coalesces concurrent candidate evaluations
  into single ``peak_batch`` calls;
- :class:`SimulateBatcher` — coalesces concurrent ``/v1/simulate`` runs
  into fused batched engines (``repro.sim.batch``);
- :class:`ThermalService` — transport-free tenant registry, payload
  validation, tau selection, simulation, degradation ladder;
- :class:`ThermalServer` — the asyncio HTTP transport;
- :mod:`repro.serve.loadgen` — seeded Poisson load generator writing
  ``BENCH_serve.json``.
"""

from .batch import MicroBatcher, SimulateBatcher
from .cache import ServeCache, config_fingerprint, model_fingerprint
from .http import ThermalServer
from .service import ServeConfig, TenantState, ThermalService

__all__ = [
    "MicroBatcher",
    "SimulateBatcher",
    "ServeCache",
    "ServeConfig",
    "TenantState",
    "ThermalServer",
    "ThermalService",
    "config_fingerprint",
    "model_fingerprint",
]

"""The asyncio HTTP/1.1 transport of ``repro.serve``.

:class:`ThermalServer` binds a socket via :func:`asyncio.start_server`
and translates a deliberately small slice of HTTP/1.1 — request line,
headers, ``Content-Length`` bodies, keep-alive — onto the transport-free
:class:`~repro.serve.service.ThermalService`.  Zero dependencies beyond
the standard library; JSON in, JSON out, plus a JSONL streaming form of
``/v1/peak`` for bulk candidate evaluation.

Routes (full request/response schemas in ``docs/serve.md``):

==========  =======================  ==========================================
method      path                     purpose
==========  =======================  ==========================================
GET         ``/``                    service discovery document
GET         ``/metrics``             OpenMetrics exposition (live counters,
                                     latency quantiles and buckets)
GET         ``/debug/traces``        recent request spans (JSON or waterfall
                                     HTML; empty unless tracing is enabled)
GET         ``/v1/tenants``          list tenants
POST        ``/v1/tenants``          create a tenant
DELETE      ``/v1/tenants/<name>``   remove a tenant
POST        ``/v1/peak``             Algorithm-1 peak of candidate placements
POST        ``/v1/tau``              safe rotation interval via the tau-ladder
POST        ``/v1/simulate``         bounded-horizon simulation summary
==========  =======================  ==========================================

Every request is timed into ``serve.latency_s``, a per-endpoint
``serve.http.latency.<endpoint>`` histogram and — once a tenant is
resolved — ``serve.tenant.<name>.latency``; tenants with an SLO feed the
same latency into their error-budget tracker.  With
``ServeConfig.trace_spans`` on, each request runs under an ``http.<endpoint>``
root span and the serve internals (micro-batcher, cache, engine phases)
attach child spans — see ``docs/observability.md``.

Error mapping: validation failures are 400, unknown tenants/routes 404,
wrong methods 405, oversized bodies 413, unexpected exceptions 500 (the
connection survives; ``serve.http.errors`` counts them), and a tenant
whose degradation ladder refuses the request gets **503 with a
``Retry-After`` header** (see ``docs/faults.md``).

The server is single-threaded by design: requests interleave on the
event loop, and ``/v1/simulate`` *blocks* the loop for its (clamped)
horizon — the documented trade-off that makes every shared cache safe
without locks, and the very thing the micro-batcher exploits (requests
queue while the loop is busy, then coalesce into one ``peak_batch``).
"""

from __future__ import annotations

import asyncio
import json
import time
from contextvars import ContextVar
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs

from ..obs import MetricsRegistry
from ..obs.export import (
    histogram_exposition,
    to_openmetrics,
    trace_waterfall_html,
)
from ..obs.profiling import PhaseProfiler
from ..obs.spans import SpanTracer, span_to_json_line
from .batch import MicroBatcher, SimulateBatcher
from .cache import ServeCache
from .service import ServeConfig, ThermalService, metric_label

__all__ = ["ThermalServer"]

class _RequestScope:
    """Mutable per-request state carried by :data:`_REQUEST_SCOPE`.

    One instance per served request.  ``_tenant_for`` records the tenant
    it resolved by *mutating* the scope rather than re-``set``-ing the
    ContextVar: the var is set exactly once per request (token captured)
    and reset in a ``finally``, so no request's state can leak into the
    next one on the same connection — the discipline the
    ``async-contextvar-leak`` lint rule checks.
    """

    __slots__ = ("tenant",)

    def __init__(self) -> None:
        self.tenant: Optional[str] = None


#: Scope of the request currently being dispatched; a ContextVar so
#: interleaved requests on the single event loop cannot cross-attribute
#: their latencies.  Set/reset exclusively by ``_handle_connection``.
_REQUEST_SCOPE: ContextVar[Optional[_RequestScope]] = ContextVar(
    "repro_serve_request_scope", default=None
)

#: Path -> short endpoint label for metric names and span names.
_ENDPOINT_LABELS = {
    "/": "root",
    "/metrics": "metrics",
    "/debug/traces": "debug_traces",
    "/v1/tenants": "tenants",
    "/v1/peak": "peak",
    "/v1/tau": "tau",
    "/v1/simulate": "simulate",
}


def _endpoint_of(path: str) -> str:
    """The metric/span label of a request path (prefix-matched)."""
    label = _ENDPOINT_LABELS.get(path)
    if label is not None:
        return label
    if path.startswith("/v1/tenants/"):
        return "tenants"
    return "other"

_JSON = "application/json"
_JSONL = "application/jsonl"
_OPENMETRICS = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: endpoints advertised by ``GET /``
_ENDPOINTS = (
    "GET /",
    "GET /metrics",
    "GET /debug/traces",
    "GET /v1/tenants",
    "POST /v1/tenants",
    "DELETE /v1/tenants/<name>",
    "POST /v1/peak",
    "POST /v1/tau",
    "POST /v1/simulate",
)


class _HttpError(Exception):
    """An error with a definite HTTP status and JSON body."""

    def __init__(self, status: int, message: str, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ThermalServer:
    """One serving instance: socket, service core, caches, metrics."""

    def __init__(
        self,
        serve_config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[ServeCache] = None,
    ):
        self.config = serve_config if serve_config is not None else ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = cache if cache is not None else ServeCache()
        self.service = ThermalService(self.config, self.cache)
        self.tracer = SpanTracer(
            enabled=self.config.trace_spans,
            capacity=self.config.trace_capacity,
            sink_path=self.config.trace_path,
        )
        if self.cache.tracer is None:
            self.cache.tracer = self.tracer
        self.batcher = MicroBatcher(
            self.config.batch_window_s, tracer=self.tracer
        )
        # /v1/simulate bursts coalesce one tick's requests and fuse their
        # thermal stepping (repro.sim.batch); parallel.batch.* gauges
        # land in the server registry, never a simulation's own metrics
        self.sim_batcher = SimulateBatcher(
            self.service,
            self.config.batch_window_s,
            tracer=self.tracer,
            metrics=self.registry,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        #: bound TCP port, available after :meth:`start` (ephemeral-port
        #: friendly: pass ``port=0`` and read this back)
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``python -m repro.serve`` main loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and release the socket.

        ``self._server`` is detached *before* the await: a concurrent
        ``close`` (or a ``start`` racing a shutdown) interleaving at
        ``wait_closed`` must not see — or re-close — a half-closed
        server (the ``async-shared-mutation`` hazard).
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                endpoint = _endpoint_of(path.partition("?")[0])
                scope_token = _REQUEST_SCOPE.set(_RequestScope())
                started = time.perf_counter()
                try:
                    with self.tracer.span(
                        f"http.{endpoint}", root=True, method=method, path=path
                    ) as span:
                        status, payload, extra = await self._dispatch(
                            method, path, headers, body
                        )
                        span.annotate(status=status)
                    self._observe_latency(
                        endpoint, time.perf_counter() - started
                    )
                finally:
                    _REQUEST_SCOPE.reset(scope_token)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                self._write_response(writer, status, payload, extra, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _observe_latency(self, endpoint: str, elapsed_s: float) -> None:
        """Fold one served request into the latency instruments.

        Always: the overall ``serve.latency_s`` and the per-endpoint
        histogram.  When ``_tenant_for`` resolved a tenant during the
        dispatch: its per-tenant histogram and — if it carries an SLO —
        its error-budget tracker (which may fire the
        ``slo-latency-violation`` detector).
        """
        self.registry.histogram("serve.latency_s", timing=True).observe(
            elapsed_s
        )
        self.registry.histogram(
            f"serve.http.latency.{endpoint}", timing=True
        ).observe(elapsed_s)
        scope = _REQUEST_SCOPE.get()
        tenant_name = scope.tenant if scope is not None else None
        if tenant_name is None:
            return
        self.registry.histogram(
            f"serve.tenant.{metric_label(tenant_name)}.latency", timing=True
        ).observe(elapsed_s)
        try:
            tenant = self.service.tenant(tenant_name)
        except KeyError:
            return
        if tenant.slo is not None:
            now_s = asyncio.get_running_loop().time()
            tenant.slo.observe_latency(now_s, elapsed_s)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; ``None`` on a cleanly closed connection."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(request_line, None)
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            # drain nothing — the 413 response closes the connection
            headers["connection"] = "close"
            return method, path, headers, b"\x00oversized"
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in extra_headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Route one request; never raises (errors become responses)."""
        self.registry.counter("serve.http.requests").inc()
        try:
            if body.startswith(b"\x00oversized"):
                raise _HttpError(413, "request body exceeds limit")
            return await self._route(method, path, headers, body)
        except _HttpError as exc:
            if exc.status >= 500:
                self.registry.counter("serve.http.errors").inc()
            extra = {"Content-Type": _JSON}
            if exc.retry_after_s is not None:
                extra["Retry-After"] = str(max(1, round(exc.retry_after_s)))
            payload = _json_bytes({"error": exc.message, "status": exc.status})
            return exc.status, payload, extra
        except Exception as exc:  # unexpected: keep the server alive
            self.registry.counter("serve.http.errors").inc()
            payload = _json_bytes(
                {"error": f"{type(exc).__name__}: {exc}", "status": 500}
            )
            return 500, payload, {"Content-Type": _JSON}

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        path, _, query = path.partition("?")
        if path == "/":
            _require(method, "GET")
            return _json_response(
                {
                    "service": "repro.serve",
                    "paper": "Thermal Management for S-NUCA Many-Cores "
                    "via Synchronous Thread Rotations",
                    "endpoints": list(_ENDPOINTS),
                }
            )
        if path == "/metrics":
            _require(method, "GET")
            return self._metrics_response()
        if path == "/debug/traces":
            _require(method, "GET")
            return self._debug_traces(query)
        if path == "/v1/tenants":
            if method == "GET":
                return _json_response(
                    {
                        "tenants": [
                            self.service.tenant_info(tenant)
                            for tenant in self.service.tenants()
                        ]
                    }
                )
            _require(method, "POST")
            payload = _parse_json(body)
            name = payload.get("name")
            info = _catch_400(
                lambda: self.service.create_tenant(
                    name, payload.get("config"), payload.get("slo")
                )
            )
            return _json_response(info)
        if path.startswith("/v1/tenants/"):
            _require(method, "DELETE")
            name = path[len("/v1/tenants/"):]
            try:
                self.service.delete_tenant(name)
            except KeyError as exc:
                raise _HttpError(404, str(exc)) from exc
            return _json_response({"deleted": name})
        if path == "/v1/peak":
            _require(method, "POST")
            return await self._peak(headers, body)
        if path == "/v1/tau":
            _require(method, "POST")
            return await self._tau(body)
        if path == "/v1/simulate":
            _require(method, "POST")
            return await self._simulate(body)
        raise _HttpError(404, f"no route {path!r}")

    # -- endpoint bodies -----------------------------------------------------

    def _tenant_for(self, payload: Dict[str, Any], endpoint: str):
        name = payload.get("tenant")
        if not isinstance(name, str):
            raise _HttpError(400, "request needs a 'tenant' name")
        try:
            tenant = self.service.tenant(name)
        except KeyError as exc:
            raise _HttpError(404, str(exc)) from exc
        now_s = asyncio.get_running_loop().time()
        wait_s = self.service.blocked_for(tenant, endpoint, now_s)
        if wait_s is not None:
            self.registry.counter("serve.http.rejected_503").inc()
            raise _HttpError(
                503,
                f"tenant {name!r} is {tenant.mode}; retry later",
                retry_after_s=wait_s,
            )
        tenant.requests += 1
        scope = _REQUEST_SCOPE.get()
        if scope is not None:
            scope.tenant = name
        return tenant

    async def _peak(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        if headers.get("content-type", "").startswith(_JSONL):
            return await self._peak_jsonl(body)
        payload = _parse_json(body)
        tenant = self._tenant_for(payload, "peak")
        seqs, taus_s = _catch_400(
            lambda: self.service.parse_candidates(tenant, payload)
        )
        peaks = await self.batcher.evaluate_many(tenant.calculator, seqs, taus_s)
        single = "candidates" not in payload
        return _json_response(
            self.service.peak_payload(tenant, peaks, taus_s, single)
        )

    async def _peak_jsonl(self, body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        """Streaming form: header line, then one candidate per JSONL line."""
        lines = [line for line in body.decode("utf-8").splitlines() if line.strip()]
        if not lines:
            raise _HttpError(400, "empty JSONL body")
        header = _parse_json(lines[0].encode())
        tenant = self._tenant_for(header, "peak")
        seqs, taus_s = [], []
        for line in lines[1:]:
            candidate = _parse_json(line.encode())
            seq, tau_s = _catch_400(
                lambda c=candidate: self.service._parse_candidate(tenant, c)
            )
            seqs.append(seq)
            taus_s.append(tau_s)
        if not seqs:
            raise _HttpError(400, "JSONL body has no candidates")
        peaks = await self.batcher.evaluate_many(tenant.calculator, seqs, taus_s)
        results = self.service.peak_payload(tenant, peaks, taus_s, single=False)
        payload = "\n".join(
            json.dumps(result, sort_keys=True) for result in results["results"]
        ).encode() + b"\n"
        return 200, payload, {"Content-Type": _JSONL}

    async def _tau(self, body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        payload = _parse_json(body)
        tenant = self._tenant_for(payload, "tau")
        seqs, taus_s = _catch_400(
            lambda: self.service.ladder_candidates(tenant, payload)
        )
        peaks = await self.batcher.evaluate_many(tenant.calculator, seqs, taus_s)
        return _json_response(self.service.tau_payload(tenant, peaks, taus_s))

    async def _simulate(
        self, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        payload = _parse_json(body)
        tenant = self._tenant_for(payload, "simulate")
        profiler = PhaseProfiler(enabled=True) if self.tracer.enabled else None
        try:
            # concurrent requests coalesce in the SimulateBatcher and run
            # with fused thermal stepping; each future resolves with its
            # own request's summary or exception
            summary = await self.sim_batcher.simulate(
                tenant, payload, profiler
            )
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from exc
        except _HttpError:
            raise
        except Exception as exc:
            now_s = asyncio.get_running_loop().time()
            mode = self.service.record_simulate_failure(tenant, now_s)
            self.registry.counter("serve.http.errors").inc()
            payload_bytes = _json_bytes(
                {
                    "error": f"simulation failed: {type(exc).__name__}: {exc}",
                    "status": 500,
                    "tenant": tenant.name,
                    "mode": mode,
                }
            )
            return 500, payload_bytes, {"Content-Type": _JSON}
        self.service.record_simulate_success(tenant)
        if profiler is not None:
            self.tracer.record_phases(profiler.summary())
        summary["tenant"] = tenant.name
        return _json_response(summary)

    def _metrics_response(self) -> Tuple[int, bytes, Dict[str, str]]:
        """Refresh the ``serve.*`` gauges and render OpenMetrics.

        Histograms additionally expose their quantiles and cumulative
        log-bucket counts (``<name>.p50`` / ``<name>.bucket.le_*``) so
        ``/metrics`` can answer "how slow are we" per endpoint and tenant.
        """
        for name, value in self.service.gauges().items():
            self.registry.gauge(name).set(value)
        for name, value in self.batcher.stats().items():
            self.registry.gauge(f"serve.{name}").set(value)
        for name, value in self.sim_batcher.stats().items():
            self.registry.gauge(f"serve.{name}").set(value)
        for name, value in self.tracer.stats().items():
            self.registry.gauge(f"serve.{name}").set(value)
        flat = self.registry.snapshot()
        for name, histogram in self.registry.histograms().items():
            flat.update(histogram_exposition(name, histogram))
        text = to_openmetrics(flat)
        return 200, text.encode("utf-8"), {"Content-Type": _OPENMETRICS}

    def _debug_traces(self, query: str) -> Tuple[int, bytes, Dict[str, str]]:
        """Recent request spans: JSON by default, waterfall HTML on demand.

        ``?limit=N`` caps the span count (most recent first in time, 100
        by default); ``?format=html`` renders the self-contained
        trace-waterfall document instead.
        """
        params = parse_qs(query)
        try:
            limit = int(params.get("limit", ["100"])[0])
        except ValueError as exc:
            raise _HttpError(400, f"invalid limit: {exc}") from exc
        if limit < 1:
            raise _HttpError(400, "limit must be a positive integer")
        fmt = params.get("format", ["json"])[0]
        spans = list(self.tracer)[-limit:]
        if fmt == "html":
            html = trace_waterfall_html(spans, title="repro.serve traces")
            return 200, html.encode("utf-8"), {"Content-Type": "text/html"}
        if fmt != "json":
            raise _HttpError(400, f"unknown format {fmt!r}; 'json' or 'html'")
        payload = _json_bytes(
            {
                "enabled": self.tracer.enabled,
                "buffered": len(self.tracer),
                "dropped": self.tracer.dropped,
                "spans": [
                    json.loads(span_to_json_line(span)) for span in spans
                ],
            }
        )
        return 200, payload, {"Content-Type": _JSON}


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise _HttpError(405, f"method {method} not allowed (use {expected})")


def _parse_json(body: bytes) -> Dict[str, Any]:
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise _HttpError(400, f"invalid JSON body: {exc}") from exc
    if not isinstance(payload, dict):
        raise _HttpError(400, "request body must be a JSON object")
    return payload


def _catch_400(fn):
    """Run a service call, translating ``ValueError`` into HTTP 400."""
    try:
        return fn()
    except ValueError as exc:
        raise _HttpError(400, str(exc)) from exc


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def _json_response(payload: Dict[str, Any]) -> Tuple[int, bytes, Dict[str, str]]:
    return 200, _json_bytes(payload), {"Content-Type": _JSON}

"""Seeded load generator and latency harness for ``repro.serve``.

``python -m repro.serve.loadgen`` boots an in-process
:class:`~repro.serve.http.ThermalServer` on an ephemeral port, registers
a tenant fleet (several tenants per distinct chip configuration, so the
cross-tenant caches actually get exercised), replays a seeded Poisson
arrival stream of mixed requests (``peak`` / ``tau`` / ``simulate`` /
``metrics``) over real TCP connections, and writes ``BENCH_serve.json``
with p50/p95/p99 latency (estimated by the same
:meth:`~repro.obs.metrics.Histogram.quantile` implementation the
``/metrics`` exposition uses), throughput, and the cache/batch counters
scraped from the server's own ``/metrics`` endpoint.  ``--trace-waterfall
PATH`` enables span tracing on the server and exports a self-contained
trace-waterfall HTML of the run.

Arrival times and request contents are fully determined by the seed; the
measured latencies are of course wall-clock.  Candidates are drawn from a
small per-configuration pool shared by every tenant of that
configuration — the steady-state behaviour of a fleet re-evaluating a
recurring set of placements, and the regime where the shared Algorithm-1
memo pays off (hit counters land in the report).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._cli import EXIT_ERROR, EXIT_OK, run_cli
from ..obs.export import parse_openmetrics, write_trace_waterfall
from ..obs.metrics import Histogram
from ..traffic import TRAFFIC_PATTERNS, build_process
from .http import ThermalServer
from .service import ServeConfig

__all__ = ["LoadgenConfig", "run_loadgen"]

#: request mix (kind, weight); weights need not sum to 1.
_DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("peak", 0.6),
    ("tau", 0.2),
    ("simulate", 0.1),
    ("metrics", 0.1),
)


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run, fully determined by ``seed``."""

    n_tenants: int = 4
    #: distinct chip configurations (tenants round-robin across them);
    #: configurations differ in DTM threshold, so they hold distinct
    #: dynamics entries in the :class:`~repro.serve.cache.ServeCache`.
    n_distinct_configs: int = 2
    n_requests: int = 200
    arrival_rate_per_s: float = 400.0
    #: candidate placements per configuration, shared by its tenants
    pool_size: int = 8
    mesh_width: int = 4
    mesh_height: int = 4
    seed: int = 0
    #: arrival process shaping the request tape (``docs/traffic.md``);
    #: the default Poisson tape is byte-identical to pre-traffic releases
    traffic: str = "poisson"
    #: simulated horizon of one ``simulate`` request [s]
    simulate_horizon_s: float = 0.02
    #: enable span tracing on the server under load
    trace: bool = False
    #: with ``trace``, write a trace-waterfall HTML here after the run
    trace_waterfall_path: Optional[str] = None


def _build_requests(
    config: LoadgenConfig, tenants: List[str], pools: List[List[List[float]]]
) -> List[Tuple[float, str, str, Optional[Dict[str, Any]]]]:
    """The seeded request tape: (arrival offset, kind, path, payload)."""
    rng = np.random.default_rng(config.seed)
    kinds = [kind for kind, _ in _DEFAULT_MIX]
    weights = np.asarray([weight for _, weight in _DEFAULT_MIX])
    weights = weights / weights.sum()
    # The arrival process draws its base stream from the same rng that
    # seeds the per-request draws below, so the default Poisson tape is
    # byte-identical to the pre-traffic inline exponential/cumsum code.
    process = build_process(
        config.traffic,
        config.arrival_rate_per_s,
        horizon_s=config.n_requests / config.arrival_rate_per_s,
    )
    offsets = process.sample_times(config.n_requests, rng, seed=config.seed)
    tape: List[Tuple[float, str, str, Optional[Dict[str, Any]]]] = []
    for index in range(config.n_requests):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        tenant_index = int(rng.integers(len(tenants)))
        tenant = tenants[tenant_index]
        pool = pools[tenant_index % config.n_distinct_configs]
        power = pool[int(rng.integers(len(pool)))]
        if kind == "metrics":
            tape.append((float(offsets[index]), kind, "/metrics", None))
        elif kind == "peak":
            payload = {"tenant": tenant, "power": power}
            tape.append((float(offsets[index]), kind, "/v1/peak", payload))
        elif kind == "tau":
            n = len(power)
            seq = [list(np.roll(power, shift)) for shift in range(0, n, n // 4)]
            payload = {"tenant": tenant, "power_seq": seq}
            tape.append((float(offsets[index]), kind, "/v1/tau", payload))
        else:
            payload = {
                "tenant": tenant,
                "scheduler": "hotpotato",
                "max_time_s": config.simulate_horizon_s,
                "workload": {"kind": "homogeneous", "seed": int(rng.integers(1 << 16))},
            }
            tape.append((float(offsets[index]), kind, "/v1/simulate", payload))
    return tape


async def _http_request(
    host: str, port: int, method: str, path: str, payload: Optional[Dict[str, Any]]
) -> Tuple[int, bytes]:
    """One request over a fresh TCP connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        response_body = await reader.readexactly(length) if length else b""
        return status, response_body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _quantile_summary(values: Sequence[float]) -> Histogram:
    """The latencies folded into a log-bucketed histogram.

    The report's p50/p95/p99 come from :meth:`Histogram.quantile` — the
    same estimator behind the server's ``/metrics`` exposition, so
    loadgen numbers and scraped numbers are directly comparable.
    """
    histogram = Histogram("loadgen.latency_s", timing=True)
    for value in values:
        histogram.observe(value)
    return histogram


async def _run(
    config: LoadgenConfig, server: ThermalServer
) -> Tuple[Dict[str, Any], List[Any]]:
    """Drive the request tape against ``server``; return (report, spans).

    The server is constructed by :func:`run_loadgen` *before* the event
    loop starts (its ``__init__`` may open a trace sink), and the span
    waterfall is exported there after the loop exits — no file I/O ever
    runs inside the loop (the ``async-blocking-call`` lint gate).
    """
    await server.start()
    assert server.port is not None
    host, port = server.config.host, server.port
    try:
        tenants: List[str] = []
        for index in range(config.n_tenants):
            distinct = index % config.n_distinct_configs
            name = f"tenant-{index}"
            status, _ = await _http_request(
                host,
                port,
                "POST",
                "/v1/tenants",
                {
                    "name": name,
                    "config": {
                        "mesh_width": config.mesh_width,
                        "mesh_height": config.mesh_height,
                        "dtm_threshold_c": 70.0 + 5.0 * distinct,
                    },
                },
            )
            if status != 200:
                raise RuntimeError(f"tenant creation failed with HTTP {status}")
            tenants.append(name)
        n_cores = config.mesh_width * config.mesh_height
        rng = np.random.default_rng(config.seed + 1)
        pools = [
            [
                [float(p) for p in rng.uniform(0.5, 2.0, n_cores)]
                for _ in range(config.pool_size)
            ]
            for _ in range(config.n_distinct_configs)
        ]
        tape = _build_requests(config, tenants, pools)

        loop = asyncio.get_running_loop()
        started_s = loop.time()
        latencies: Dict[str, List[float]] = {}
        statuses: Dict[int, int] = {}

        async def fire(offset_s: float, kind: str, path: str, payload):
            delay_s = started_s + offset_s - loop.time()
            if delay_s > 0:
                await asyncio.sleep(delay_s)
            method = "GET" if payload is None else "POST"
            sent_s = time.perf_counter()
            status, _body = await _http_request(host, port, method, path, payload)
            latencies.setdefault(kind, []).append(time.perf_counter() - sent_s)
            statuses[status] = statuses.get(status, 0) + 1

        await asyncio.gather(*(fire(*entry) for entry in tape))
        duration_s = loop.time() - started_s

        _status, metrics_body = await _http_request(host, port, "GET", "/metrics", None)
        metrics = parse_openmetrics(metrics_body.decode("utf-8"))
        spans = list(server.tracer)
    finally:
        await server.close()

    all_latencies = [value for values in latencies.values() for value in values]
    overall = _quantile_summary(all_latencies)
    report: Dict[str, Any] = {
        "benchmark": "repro.serve.loadgen",
        "config": {
            "n_tenants": config.n_tenants,
            "n_distinct_configs": config.n_distinct_configs,
            "n_requests": config.n_requests,
            "arrival_rate_per_s": config.arrival_rate_per_s,
            "mesh": [config.mesh_width, config.mesh_height],
            "seed": config.seed,
            "traffic": config.traffic,
        },
        "duration_s": duration_s,
        "throughput_rps": config.n_requests / duration_s if duration_s else 0.0,
        "latency_s": {
            "p50": overall.quantile(0.5),
            "p95": overall.quantile(0.95),
            "p99": overall.quantile(0.99),
            "mean": overall.mean,
            "max": overall.max,
        },
        "latency_by_kind_s": {
            kind: {
                "n": histogram.count,
                "p50": histogram.quantile(0.5),
                "p95": histogram.quantile(0.95),
                "p99": histogram.quantile(0.99),
            }
            for kind, histogram in sorted(
                (kind, _quantile_summary(values))
                for kind, values in latencies.items()
            )
        },
        "http_statuses": {str(code): count for code, count in sorted(statuses.items())},
        "cache": {
            name: metrics[metric]
            for name, metric in (
                ("peak_memo_hits", "repro_serve_cache_peak_memo_hits"),
                ("peak_memo_misses", "repro_serve_cache_peak_memo_misses"),
                ("dynamics_hits", "repro_serve_cache_dynamics_hits"),
                ("dynamics_misses", "repro_serve_cache_dynamics_misses"),
                ("batch_flushes", "repro_serve_batch_flushes"),
                ("batch_requests", "repro_serve_batch_requests"),
                ("batch_coalesced", "repro_serve_batch_coalesced"),
            )
            if metric in metrics
        },
    }
    if config.trace:
        report["trace"] = {
            "spans": len(spans),
            "waterfall": config.trace_waterfall_path,
        }
    return report, spans


def run_loadgen(config: Optional[LoadgenConfig] = None) -> Dict[str, Any]:
    """Run one load-generation pass and return the report dict."""
    config = config if config is not None else LoadgenConfig()
    server = ThermalServer(
        ServeConfig(
            port=0,
            max_tenants=max(64, config.n_tenants),
            trace_spans=config.trace,
        )
    )
    report, spans = asyncio.run(_run(config, server))
    if config.trace and config.trace_waterfall_path:
        write_trace_waterfall(
            config.trace_waterfall_path,
            spans,
            title=f"loadgen: {config.n_requests} requests, "
            f"{config.n_tenants} tenants (seed {config.seed})",
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; writes the benchmark report JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Measure repro.serve latency/throughput (docs/serve.md).",
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--rate", type=float, default=400.0, help="arrivals/s")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--traffic",
        choices=[p for p in TRAFFIC_PATTERNS if p != "trace"],
        default="poisson",
        help="arrival process for the request tape (docs/traffic.md)",
    )
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--trace-waterfall",
        metavar="PATH",
        help="enable span tracing and export a waterfall HTML to PATH",
    )
    args = parser.parse_args(argv)
    if args.requests < 1 or args.tenants < 1:
        print("error: --requests and --tenants must be positive", file=sys.stderr)
        return EXIT_ERROR
    report = run_loadgen(
        LoadgenConfig(
            n_tenants=args.tenants,
            n_requests=args.requests,
            arrival_rate_per_s=args.rate,
            seed=args.seed,
            traffic=args.traffic,
            trace=args.trace_waterfall is not None,
            trace_waterfall_path=args.trace_waterfall,
        )
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"{args.requests} requests in {report['duration_s']:.2f}s "
        f"({report['throughput_rps']:.0f} rps), "
        f"p50={report['latency_s']['p50'] * 1000.0:.2f}ms "
        f"p99={report['latency_s']['p99'] * 1000.0:.2f}ms -> {args.out}"
    )
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(run_cli(main))

#!/usr/bin/env python3
"""Observability tour: trace a run, read its metrics, profile its phases.

Runs the paper's 16-core motivational platform under HotPotato with every
observability component enabled (``docs/observability.md``), then shows:

1. the structured **trace** — per-interval placement/power/temperature
   records, rotation-epoch boundaries and simulation events — exported to
   JSONL and reloaded losslessly;
2. the **metrics snapshot** — engine counters (migrations per AMD ring),
   thermal-solver cache hit rates, scheduler-internal gauges, decision
   latency — exported to CSV/JSON;
3. the **profiling summary** — wall-clock cost of the scheduler-decision,
   power-map-build and thermal-step phases of the hot loop;
4. the **analysis layer** — derived statistics, the analytic ``T_peak``
   bound of Algorithm 1, the violation detectors (a ``check``) and a
   self-contained single-file HTML report.

Run:  python examples/observability_tour.py
"""

import tempfile
from pathlib import Path

from repro import config
from repro.experiments.reporting import (
    render_metrics_table,
    render_profile_table,
    render_violations_table,
)
from repro.obs import (
    BoundDetector,
    PowerMapDetector,
    TraceRecorder,
    analyze,
    default_detectors,
    run_detectors,
    write_html_report,
)
from repro.sched import HotPotatoScheduler
from repro.sim import IntervalSimulator
from repro.workload import PARSEC, Task


def main() -> None:
    # 1. enable observability through configuration (all off by default)
    cfg = config.motivational().with_observability(
        trace=True, metrics=True, profiling=True
    )
    tasks = [
        Task(0, PARSEC["blackscholes"], n_threads=2, seed=1),
        Task(1, PARSEC["swaptions"], n_threads=2, seed=2, arrival_time_s=5e-3),
    ]
    simulator = IntervalSimulator(cfg, HotPotatoScheduler(), tasks)
    result = simulator.run(max_time_s=0.5)
    observer = simulator.observer

    print(result.summary())

    # 2. the structured trace: typed records, lossless JSONL round-trip
    trace = observer.trace
    print(
        f"\ntrace: {len(trace)} records "
        f"({len(trace.intervals())} intervals, {len(trace.epochs())} epoch "
        f"boundaries, {len(trace.events())} events)"
    )
    hottest = max(
        trace.intervals(), key=lambda r: max(r.temps_c)
    )
    print(
        f"hottest interval starts at {hottest.time_s * 1e3:.2f} ms: "
        f"{max(hottest.temps_c):.2f} C, "
        f"{len(hottest.placements)} threads placed, "
        f"DTM throttling cores {list(hottest.dtm_throttled) or 'none'}"
    )
    for boundary in trace.epochs()[:3]:
        print(
            f"rotation epoch {boundary.epoch} begins at "
            f"{boundary.time_s * 1e3:.2f} ms (tau = {boundary.tau_s * 1e3:.2f} ms)"
        )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.jsonl"
        trace.write_jsonl(path)
        reloaded = TraceRecorder.read_jsonl(path)
        print(
            f"JSONL round-trip: wrote {path.stat().st_size} bytes, "
            f"reload equals original: {reloaded == trace}"
        )

    # 3. the metrics snapshot (also stored in result.metrics_snapshot)
    snapshot = result.metrics_snapshot
    ring_migrations = {
        key.rsplit(".", 1)[-1]: int(value)
        for key, value in snapshot.items()
        if key.startswith("engine.migrations.to_ring.")
    }
    print(f"\nmigrations per destination AMD ring: {ring_migrations}")
    # the eigenbasis-resident engine caches exp(lambda tau) per step size;
    # the dense exp(C tau) cache only fills when step() is called directly
    hits = snapshot["thermal.decay_cache.hits"]
    misses = snapshot["thermal.decay_cache.misses"]
    total = hits + misses
    rate = f"{hits / total:.1%}" if total else "n/a"
    print(
        f"thermal exp(lambda tau) decay cache: {int(hits)} hits / "
        f"{int(misses)} misses ({rate} hit rate)"
    )
    print(
        f"scheduler decision latency: mean "
        f"{snapshot['scheduler.decision_latency_s.mean'] * 1e6:.1f} us over "
        f"{int(snapshot['scheduler.decision_latency_s.count'])} decisions"
    )
    print()
    print(
        render_metrics_table(
            {
                key: value
                for key, value in snapshot.items()
                if key.startswith(("engine.", "sched."))
            },
            title="engine + scheduler metrics",
        )
    )
    print(f"\nCSV export starts:\n{observer.metrics.to_csv().splitlines()[1]}")

    # 4. the profiling summary (wall-clock; off by default)
    print()
    print(render_profile_table(result.profile, title="hot-loop phase profile"))

    # 5. the analysis layer: derived statistics + the Algorithm 1 bound
    # (the simulator context already holds the platform's rings and the
    # PeakTemperatureCalculator -- the CLI builds the same from --config)
    calculator = simulator.ctx.calculator
    analysis = analyze(
        trace,
        limit_c=cfg.thermal.dtm_threshold_c,
        ring_of=simulator.ctx.rings.ring_of,
        peak_fn=lambda seq, tau: calculator.peak(seq, tau, within_epoch_samples=4),
    )
    thermal = analysis.thermal
    print(
        f"\nanalysis: peak {thermal.peak_c:.2f} C on core {thermal.peak_core}, "
        f"DTM duty cycle {analysis.dtm.duty_cycle:.2%}, "
        f"{analysis.migration.count} migrations "
        f"(per destination ring: {analysis.migration.per_dst_ring})"
    )
    if analysis.bound is not None:
        bound = analysis.bound
        print(
            f"Algorithm 1 bound: analytic T_peak {bound.analytic_peak_c:.2f} C "
            f"vs observed {bound.observed_peak_c:.2f} C -> "
            f"{'EXCEEDED' if bound.exceeded else 'held'} "
            f"(margin {bound.margin_c:+.2f} C, delta={bound.delta})"
        )

    # 6. a `check` (what `python -m repro.obs check` does) + HTML export
    detectors = default_detectors(dtm_threshold_c=cfg.thermal.dtm_threshold_c)
    detectors.append(PowerMapDetector(cfg.thermal.idle_power_w))
    if analysis.bound is not None:
        detectors.append(BoundDetector(analysis.bound.analytic_peak_c))
    violations = run_detectors(trace, detectors)
    print()
    print(render_violations_table(violations, title="check"))
    report_path = Path(tempfile.gettempdir()) / "observability_tour_report.html"
    write_html_report(
        report_path, trace, analysis, violations, title="Observability tour"
    )
    print(
        f"\nself-contained HTML report: {report_path} "
        f"({report_path.stat().st_size} bytes)"
    )


if __name__ == "__main__":
    main()

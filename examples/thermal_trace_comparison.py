#!/usr/bin/env python3
"""The motivational example (paper Fig. 2): three ways to manage heat.

Runs the two-threaded blackscholes instance on the 16-core chip under

- no management (peak frequency; violates the 70 degC threshold),
- TSP power budgeting via DVFS (safe but slowest),
- fixed synchronous rotation over the four centre cores (safe, and
  clearly faster than DVFS),

then prints the response times, the violation verdicts, and the traces —
the paper's whole motivation in one script.

Run:  python examples/thermal_trace_comparison.py
"""

from repro.experiments import fig2


def main() -> None:
    print("simulating the three variants (a few seconds)...\n")
    result = fig2.run()
    print(result.render())
    print()

    none_ms = result.response_ms("none")
    rot_ms = result.response_ms("rotation")
    dvfs_ms = result.response_ms("tsp-dvfs")
    print(
        f"rotation penalty vs unmanaged: {(rot_ms / none_ms - 1) * 100:+.1f} % "
        "(paper: +8.1 %)"
    )
    print(
        f"rotation gain over TSP-DVFS:   {(dvfs_ms / rot_ms - 1) * 100:+.1f} % "
        "(paper: +11.9 %)"
    )


if __name__ == "__main__":
    main()

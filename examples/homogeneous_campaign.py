#!/usr/bin/env python3
"""Homogeneous full-load campaign (paper Fig. 4a scenario, single benchmark).

Fully loads the 64-core chip with vari-sized instances of one benchmark and
compares HotPotato against PCMig on makespan — the closed-system campaign
behind the paper's headline 10.72 % average speedup.

Run:  python examples/homogeneous_campaign.py [benchmark]
      (default: blackscholes; see repro.workload.PARSEC for choices)
"""

import sys

from repro import config
from repro.experiments import fig4a
from repro.workload import PARSEC


def main(benchmark: str = "blackscholes") -> None:
    if benchmark not in PARSEC:
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from {', '.join(PARSEC)}"
        )
    cfg = config.table1()
    print(
        f"fully loading {cfg.n_cores} cores with vari-sized {benchmark} "
        "instances (this takes a minute)...\n"
    )
    result = fig4a.run(benchmarks=(benchmark,), work_scale=2.5)
    comparison = result.comparisons[benchmark]

    for name, outcome in (
        ("PCMig", comparison.pcmig),
        ("HotPotato", comparison.hotpotato),
    ):
        print(f"--- {name} ---")
        print(outcome.summary())
        print()
    print(
        f"HotPotato speedup: {comparison.speedup_pct:+.2f} % "
        f"(paper mean across all benchmarks: +10.72 %)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "blackscholes")

#!/usr/bin/env python3
"""Quickstart: schedule a workload with HotPotato and inspect the result.

Builds the paper's 16-core motivational platform (Fig. 1), runs a
two-threaded blackscholes instance under the HotPotato scheduler, and prints
the headline metrics plus a thermal trace — everything through the public
API, in under a minute.

Run:  python examples/quickstart.py
"""

from repro import config
from repro.arch import AmdRings, Mesh
from repro.sched import HotPotatoScheduler
from repro.sim import IntervalSimulator
from repro.workload import PARSEC, Task


def main() -> None:
    cfg = config.motivational()  # the paper's 16-core platform (Figs. 1-2)

    # 1. the architecture: a 4x4 mesh decomposes into concentric AMD rings
    rings = AmdRings(Mesh(cfg.mesh_width, cfg.mesh_height))
    print("AMD rings of the 16-core chip (ring index per core):")
    print(rings.render_ascii())
    print(
        f"-> {rings.n_rings} rings; ring 0 (cores {list(rings.ring(0))}) "
        "is the fastest and hottest\n"
    )

    # 2. the workload: a 2-thread blackscholes instance (master/slave phases)
    task = Task(0, PARSEC["blackscholes"], n_threads=2, seed=1)
    print(
        f"workload: {task.profile.name} x{task.n_threads}, "
        f"{task.total_instructions() / 1e6:.0f} M instructions, "
        f"{task.n_phases} phases\n"
    )

    # 3. simulate under HotPotato (synchronous thread rotation, no DVFS)
    simulator = IntervalSimulator(cfg, HotPotatoScheduler(), [task])
    result = simulator.run(max_time_s=1.0)

    print(result.summary())
    print()
    print(
        f"thermal threshold: {cfg.thermal.dtm_threshold_c:.0f} C -> "
        f"exceeded: {result.trace.exceeds(cfg.thermal.dtm_threshold_c)}"
    )
    print("\nthermal trace of the two hottest centre cores:")
    print(
        result.trace.render_ascii(
            core_ids=[5, 10],
            threshold_c=cfg.thermal.dtm_threshold_c,
            height=12,
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Open-system scheduling under Poisson arrivals (paper Fig. 4b scenario).

A random multi-program PARSEC mix arrives at a configurable rate on the
64-core platform; HotPotato and PCMig are compared on mean response time.
Shows the open-system machinery: admission queueing when the chip is full,
response times that include queueing delay, and the load-dependent gap
between the schedulers.

Run:  python examples/open_system_poisson.py [arrival_rate_per_s]
"""

import sys

from repro import config
from repro.sched import HotPotatoScheduler, PCMigScheduler
from repro.sim import IntervalSimulator, SimContext
from repro.workload import materialize, poisson_arrivals, random_mixed_workload


def main(arrival_rate_per_s: float = 60.0) -> None:
    cfg = config.table1()  # the paper's 64-core evaluation platform
    shared = SimContext(cfg)  # build/calibrate the models once

    print(
        f"platform: {cfg.n_cores} cores; 20-task random PARSEC mix arriving "
        f"at {arrival_rate_per_s:.0f} tasks/s\n"
    )

    outcomes = {}
    for scheduler in (PCMigScheduler(), HotPotatoScheduler()):
        specs = poisson_arrivals(
            random_mixed_workload(20, seed=7, work_scale=2.0),
            arrival_rate_per_s,
            seed=8,
        )
        sim = IntervalSimulator(
            cfg,
            scheduler,
            materialize(specs),
            ctx=SimContext(cfg, shared.thermal_model),
        )
        result = sim.run(max_time_s=60.0)
        outcomes[scheduler.name] = result
        print(f"--- {scheduler.name} ---")
        print(result.summary())
        slowest = max(result.tasks, key=lambda t: t.response_time_s)
        print(
            f"slowest task: {slowest.benchmark} x{slowest.n_threads} "
            f"({slowest.response_time_s * 1e3:.1f} ms)\n"
        )

    pcmig = outcomes["pcmig"].mean_response_time_s
    hotpotato = outcomes["hotpotato"].mean_response_time_s
    print(
        f"HotPotato mean-response speedup over PCMig: "
        f"{(pcmig / hotpotato - 1) * 100:+.2f} % "
        "(paper: up to +12.27 % at medium load)"
    )


if __name__ == "__main__":
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    main(rate)

#!/usr/bin/env python3
"""Explore the S-NUCA AMD-ring trade-off (paper Section III/V, Fig. 3).

For a mesh of configurable size, prints the concentric AMD rings with their
performance side (average LLC latency, per-benchmark effective CPI) and
thermal side (how hot a single busy core runs in each ring) — the exact
trade-off HotPotato's greedy heuristic walks.

Run:  python examples/amd_ring_explorer.py [mesh_width]
"""

import sys

import numpy as np

from repro import config
from repro.arch import AmdRings, Mesh, SnucaCache
from repro.thermal import HOT_THREAD_POWER_W, calibrated_model, steady_peak
from repro.workload import PARSEC, PerformanceModel


def main(width: int = 8) -> None:
    cfg = config.SystemConfig(mesh_width=width, mesh_height=width)
    mesh = Mesh(width, width)
    rings = AmdRings(mesh)
    snuca = SnucaCache(mesh, cfg.cache, cfg.noc)
    perf = PerformanceModel(mesh, cfg.cache, cfg.noc, cfg.dvfs)
    thermal = calibrated_model(cfg)

    print(f"{width}x{width} mesh -> {rings.n_rings} concentric AMD rings:")
    print(rings.render_ascii())
    print()

    header = f"{'ring':>4} {'AMD':>5} {'cores':>5} {'LLC[ns]':>8} {'1-hot[C]':>9}"
    bench_cols = ("blackscholes", "canneal")
    header += "".join(f" {f'CPI({b[:6]})':>12}" for b in bench_cols)
    print(header)
    for index in range(rings.n_rings):
        core = rings.ring(index)[0]
        power = np.full(cfg.n_cores, cfg.thermal.idle_power_w)
        power[core] = HOT_THREAD_POWER_W
        peak = steady_peak(thermal, power, cfg.thermal.ambient_c)
        row = (
            f"{index:>4} {rings.ring_value(index):>5.2f} "
            f"{rings.capacity(index):>5} "
            f"{snuca.ring_latency_s(rings, index) * 1e9:>8.2f} {peak:>9.2f}"
        )
        for bench in bench_cols:
            row += f" {perf.effective_cpi(PARSEC[bench], core):>12.3f}"
        print(row)

    print(
        "\nreading the table: outward rings have slower LLC access "
        "(memory-bound canneal suffers most) but run cooler — the paper's "
        "performance/thermal trade-off."
    )


if __name__ == "__main__":
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    main(width)

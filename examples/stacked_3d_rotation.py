#!/usr/bin/env python3
"""Synchronous rotation on a 3D-stacked S-NUCA die (future-work extension).

The paper's conclusion plans to explore rotation on 3D S-NUCA many-cores;
this example runs that study: it builds a CoMeT-style stacked RC model,
shows the layer gradient, and demonstrates that rotating a thread
*vertically* through its stacked column averages the gradient exactly like
2D rotation averages lateral hotspots.

Run:  python examples/stacked_3d_rotation.py [layers]
"""

import sys

from repro.experiments import stacked3d


def main(layers: int = 2) -> None:
    print(f"building a 4x4x{layers} stacked S-NUCA model...\n")
    result = stacked3d.run(layers=layers)
    print(result.render())
    print()
    print(
        f"layer gradient: {result.layer_gradient_c:.1f} C between the "
        "sink-side and top layers for the same 8 W core"
    )
    if result.rotation_rescues_top_layer:
        print(
            "vertical rotation rescues the top layer: the probe thread is "
            "unsustainable pinned up there but sustainable when rotated."
        )
    if result.rings_span_layers:
        print(
            "note: equal-AMD rings span multiple layers, so a 3D HotPotato "
            "must add layer-awareness to the ring heuristic."
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)

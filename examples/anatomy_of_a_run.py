#!/usr/bin/env python3
"""Anatomy of one HotPotato run: events, time stacks, and a die heat map.

Runs a small mixed workload under HotPotato with full observability on and
walks through what the simulator recorded:

- the structured event log (arrivals, migrations, DTM, completions),
- per-thread time stacks (compute / stall / migration / wait / queued),
- the die heat map at the hottest recorded instant,
- the result serialized to JSON and read back (repro.io).

Run:  python examples/anatomy_of_a_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import config
from repro.analysis import hotspot_report, render_heatmap
from repro.io import load_result, save_result
from repro.sched import HotPotatoScheduler
from repro.sim import IntervalSimulator, TaskCompleted, ThreadMigrated
from repro.workload import PARSEC, Task


def main() -> None:
    cfg = config.motivational()
    tasks = [
        Task(0, PARSEC["blackscholes"], 2, arrival_time_s=0.0, seed=1),
        Task(1, PARSEC["canneal"], 4, arrival_time_s=0.01, seed=2),
    ]
    sim = IntervalSimulator(
        cfg, HotPotatoScheduler(), tasks, record_events=True
    )
    result = sim.run(max_time_s=2.0)

    print("=== summary ===")
    print(result.summary())

    print("\n=== first events ===")
    print(sim.events.render(limit=8))
    migrations = sim.events.count(ThreadMigrated)
    print(f"... {migrations} migrations total")
    last = sim.events.last(TaskCompleted)
    print(
        f"last completion: task {last.task_id} ({last.benchmark}) "
        f"after {last.response_time_s * 1e3:.1f} ms"
    )

    print("\n=== per-thread time stacks ===")
    for thread_id, stack in sorted(result.time_breakdown.items()):
        print(f"{thread_id}: {stack.render()}")
    aggregate = result.aggregate_breakdown()
    print(f"chip:  {aggregate.render()}")

    print("\n=== die heat map at the hottest instant ===")
    temps = result.trace.temperatures
    hottest_sample = int(np.argmax(np.max(temps, axis=1)))
    snapshot = temps[hottest_sample]
    print(
        render_heatmap(
            snapshot,
            cfg.mesh_width,
            cfg.mesh_height,
            threshold_c=cfg.thermal.dtm_threshold_c,
            show_values=True,
        )
    )
    print(hotspot_report(snapshot, cfg.mesh_width, cfg.mesh_height))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.json"
        save_result(result, path, include_trace=True)
        restored = load_result(path)
        print(
            f"\nserialized to JSON and back: makespan "
            f"{restored.makespan_s * 1e3:.1f} ms, "
            f"peak {restored.peak_temperature_c:.2f} C "
            f"({path.stat().st_size // 1024} KiB on disk)"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The analytic peak-temperature method (paper Section IV) hands-on.

Demonstrates, on the 16-core platform:

1. the closed-form periodic fixed point vs brute-force transient simulation
   (they agree to numerical precision — the paper's Eq. 10 validated);
2. how the peak falls as the rotation interval tau shrinks (less ripple);
3. how rotating over more cores (a larger ring) buys thermal headroom;
4. the run-time cost of one Algorithm-1 evaluation.

Run:  python examples/peak_temperature_analysis.py
"""

import time

import numpy as np

from repro import config
from repro.core import (
    PeakTemperatureCalculator,
    brute_force_peak,
    rotation_peak_temperature,
)
from repro.thermal import ThermalDynamics, calibrated_model


def rotation_sequence(cores, hot_power_w, n_cores=16, idle_w=0.3):
    """One hot thread rotating over ``cores``."""
    seq = np.full((len(cores), n_cores), idle_w)
    for epoch, core in enumerate(cores):
        seq[epoch, core] = hot_power_w
    return seq


def main() -> None:
    cfg = config.motivational()
    model = calibrated_model(cfg)
    dynamics = ThermalDynamics(model)
    calc = PeakTemperatureCalculator(dynamics, cfg.thermal.ambient_c)
    amb = cfg.thermal.ambient_c

    # 1. validation: analytic vs brute force
    seq = rotation_sequence([5, 6, 9, 10], hot_power_w=8.0)
    tau = 0.5e-3
    analytic = rotation_peak_temperature(dynamics, seq, tau, amb)
    brute, _ = brute_force_peak(dynamics, seq, tau, amb, n_periods=2000)
    print("1. validation of the closed form (Eq. 10):")
    print(f"   analytic peak:    {analytic:.4f} C")
    print(f"   brute force peak: {brute:.4f} C")
    print(f"   difference:       {abs(analytic - brute) * 1e3:.3f} mK\n")

    # 2. rotation-interval sweep
    print("2. peak temperature vs rotation interval (1 hot thread, ring 0):")
    static = np.full(16, 0.3)
    static[5] = 8.0
    print(f"   no rotation: {calc.steady_peak(static):7.2f} C")
    for tau_ms in (4.0, 2.0, 1.0, 0.5, 0.25, 0.125):
        peak = calc.peak(seq, tau_ms * 1e-3, within_epoch_samples=4)
        print(f"   tau = {tau_ms:5.3f} ms: {peak:7.2f} C")
    print()

    # 3. ring-size sweep: rotating over more cores averages more heat
    print("3. peak temperature vs rotation-set size (tau = 0.5 ms):")
    for cores in ([5], [5, 6], [5, 6, 9], [5, 6, 9, 10]):
        seq_k = rotation_sequence(cores, hot_power_w=8.0)
        peak = calc.peak(seq_k, 0.5e-3, within_epoch_samples=4)
        print(f"   {len(cores)} cores {cores}: {peak:7.2f} C")
    print()

    # 4. the run-time cost the scheduler pays per evaluation
    calc.peak(seq, tau)  # warm the design-time caches
    start = time.perf_counter()
    reps = 200
    for _ in range(reps):
        calc.peak(seq, tau)
    per_eval_us = (time.perf_counter() - start) / reps * 1e6
    print(
        f"4. one Algorithm-1 evaluation: {per_eval_us:.1f} us "
        f"(paper: 23.76 us in C++ on a 64-core model)"
    )


if __name__ == "__main__":
    main()
